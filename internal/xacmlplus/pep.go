package xacmlplus

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/stream"
	"repro/internal/streamql"
	"repro/internal/telemetry"
	"repro/internal/xacml"
)

// StreamEngine abstracts the back-end DSMS as the PEP sees it: look up
// a stream schema, deploy a StreamSQL script, withdraw a query. It is
// implemented by LocalEngine (in-process dsms.Engine) and by the TCP
// client that talks to a dsmsd server.
type StreamEngine interface {
	// StreamSchema returns the schema of a registered input stream.
	StreamSchema(name string) (*stream.Schema, error)
	// DeployScript compiles and runs a StreamSQL script, returning the
	// query id and the stream handle (URI) serving the output.
	DeployScript(script string) (queryID, handle string, err error)
	// Withdraw stops a deployed query by id or handle.
	Withdraw(idOrHandle string) error
}

// LocalEngine adapts an in-process dsms.Engine to the StreamEngine
// interface by compiling scripts with the streamql package.
type LocalEngine struct {
	E *dsms.Engine
}

// StreamSchema implements StreamEngine.
func (l LocalEngine) StreamSchema(name string) (*stream.Schema, error) {
	return l.E.StreamSchema(name)
}

// DeployScript implements StreamEngine.
func (l LocalEngine) DeployScript(script string) (string, string, error) {
	c, err := streamql.CompileString(script)
	if err != nil {
		return "", "", err
	}
	dep, err := l.E.Deploy(c.Graph)
	if err != nil {
		return "", "", err
	}
	return dep.ID, dep.Handle, nil
}

// Withdraw implements StreamEngine.
func (l LocalEngine) Withdraw(idOrHandle string) error {
	return l.E.Withdraw(idOrHandle)
}

// Timings is the per-phase latency breakdown the evaluation (Fig 7)
// reports for each access-control request.
type Timings struct {
	// PDP is the policy evaluation time.
	PDP time.Duration
	// QueryGraph covers obligation/user-query compilation, the
	// single-access check, merging and NR/PR analysis.
	QueryGraph time.Duration
	// Engine is the time spent deploying the script on the DSMS (the
	// paper's "StreamBase" component).
	Engine time.Duration
}

// Total sums the phases.
func (t Timings) Total() time.Duration { return t.PDP + t.QueryGraph + t.Engine }

// AccessResponse is the PEP's answer to a stream access request.
type AccessResponse struct {
	// Decision is the PDP outcome.
	Decision xacml.Decision
	// PolicyID identifies the policy that permitted the request.
	PolicyID string
	// Verdict is the NR/PR analysis outcome (§3.5). The stream is
	// deployed only when it is OK (unless the PEP is configured with
	// DeployOnPR).
	Verdict expr.Verdict
	// Warnings detail any NR/PR findings per operator.
	Warnings []Warning
	// QueryID and Handle identify the deployed continuous query; empty
	// when nothing was deployed.
	QueryID string
	// Handle is the URI the user connects to for the data stream.
	Handle string
	// Reused reports that an identical live grant already existed and
	// its handle was returned instead of deploying a new query.
	Reused bool
	// Script is the StreamSQL sent to the engine (for observability).
	Script string
	// Timings is the per-phase latency breakdown.
	Timings Timings
}

// Granted reports whether a live stream handle was issued.
func (r *AccessResponse) Granted() bool { return r.Handle != "" }

// PEP is the Policy Enforcement Point of XACML+ (§3.2): it marshals
// user requests to the PDP, compiles obligations and user queries into
// query graphs, merges them, runs the NR/PR analysis, enforces the
// single-access constraint and manages deployed graphs.
type PEP struct {
	// PDP decides requests.
	PDP *xacml.PDP
	// Engine is the back-end DSMS.
	Engine StreamEngine
	// Manager tracks deployed graphs (§3.3, §3.4).
	Manager *GraphManager
	// DeployOnPR, when set, deploys streams despite PR warnings (the
	// paper's default behaviour is to warn and not deploy; the flag
	// exists for the ablation benchmarks).
	DeployOnPR bool
	// Audit, when non-nil, records every decision into the
	// accountability log (the §6 future-work mechanism).
	Audit *audit.Log

	// tr traces each request's pdp/graph/engine phases. It defaults to
	// a registry-less tracer so Timings are measured even when
	// telemetry is off; EnableTelemetry swaps in one that also feeds
	// latency histograms.
	tr atomic.Pointer[telemetry.Tracer]
}

// Request-phase stage indices of the PEP tracer; they mirror the
// Timings fields.
const (
	stagePDP = iota
	stageGraph
	stageEngine
)

// requestStages names the PEP tracer's stages, indexed by stagePDP..
var requestStages = []string{"pdp", "graph", "engine"}

// spans returns the request tracer, lazily installing the
// registry-less default.
func (p *PEP) spans() *telemetry.Tracer {
	if t := p.tr.Load(); t != nil {
		return t
	}
	t := telemetry.NewTracer(nil, "exacml_request", requestStages, 1)
	if p.tr.CompareAndSwap(nil, t) {
		return t
	}
	return p.tr.Load()
}

// EnableTelemetry feeds the per-request phase spans into reg as
// exacml_request_stage_seconds{stage="pdp"|"graph"|"engine"},
// exacml_request_e2e_seconds and exacml_request_traces_total. Every
// request is traced (the PEP path is not the tuple hot path), and
// resp.Timings remains derived from the same span.
func (p *PEP) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.tr.Store(telemetry.NewTracer(reg, "exacml_request", requestStages, 1))
}

// auditEvent appends an event if auditing is enabled.
func (p *PEP) auditEvent(e audit.Event) {
	if p.Audit != nil {
		_, _ = p.Audit.Append(e)
	}
}

// NewPEP wires a PEP from its parts.
func NewPEP(pdp *xacml.PDP, engine StreamEngine) *PEP {
	return &PEP{PDP: pdp, Engine: engine, Manager: NewGraphManager()}
}

// HandleRequest runs the full §3.2 workflow. userQuery may be nil for a
// plain request. The returned response carries decision, warnings and —
// when granted — the stream handle. When auditing is enabled, the
// outcome (including refusals and errors) is recorded.
func (p *PEP) HandleRequest(req *xacml.Request, userQuery *UserQuery) (*AccessResponse, error) {
	resp, err := p.handleRequest(req, userQuery)
	if p.Audit != nil && req != nil {
		e := audit.Event{
			Kind:     "access",
			Subject:  req.SubjectID(),
			Resource: req.ResourceID(),
			Action:   req.ActionID(),
		}
		if resp != nil {
			e.PolicyID = resp.PolicyID
			e.Decision = resp.Decision.String()
			e.Verdict = resp.Verdict.String()
			e.Handle = resp.Handle
			if len(resp.Warnings) > 0 {
				parts := make([]string, len(resp.Warnings))
				for i, w := range resp.Warnings {
					parts[i] = w.String()
				}
				e.Detail = strings.Join(parts, "; ")
			}
		}
		if err != nil {
			e.Detail = err.Error()
		}
		p.auditEvent(e)
	}
	return resp, err
}

func (p *PEP) handleRequest(req *xacml.Request, userQuery *UserQuery) (*AccessResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("xacmlplus: nil request")
	}
	resp := &AccessResponse{Verdict: expr.VerdictOK}

	// One span per request carries the pdp/graph/engine phase stamps;
	// the deferred cleanup closes whatever stage an early return left
	// open and derives resp.Timings from the same measurements the
	// telemetry histograms consume.
	sp := p.spans().Sample()
	defer func() {
		sp.CloseOpen()
		resp.Timings = Timings{
			PDP:        sp.Duration(stagePDP),
			QueryGraph: sp.Duration(stageGraph),
			Engine:     sp.Duration(stageEngine),
		}
		sp.Finish()
	}()

	// Step 1-2: PDP evaluation.
	sp.Begin(stagePDP)
	result, err := p.PDP.Evaluate(req)
	sp.End(stagePDP)
	if err != nil {
		return nil, fmt.Errorf("xacmlplus: PDP: %w", err)
	}
	resp.Decision = result.Decision
	resp.PolicyID = result.PolicyID
	if result.Decision != xacml.Permit {
		return resp, nil
	}

	user := req.SubjectID()
	streamName := req.ResourceID()
	if streamName == "" {
		return nil, fmt.Errorf("xacmlplus: request names no resource stream")
	}

	// Step 2 (cont.): obligations -> policy query graph.
	sp.Begin(stageGraph)
	policyGraph, err := ObligationsToGraph(streamName, result.Obligations)
	if err != nil {
		return nil, err
	}

	// Step 4: user query -> graph, merge, NR/PR analysis.
	var userGraph *dsms.QueryGraph
	if userQuery != nil {
		if uqs := strings.TrimSpace(userQuery.Stream.Name); uqs != "" && !strings.EqualFold(uqs, streamName) {
			return resp, fmt.Errorf("xacmlplus: user query targets stream %q but request asks for %q", uqs, streamName)
		}
		userGraph, err = userQuery.ToGraph()
		if err != nil {
			return resp, err
		}
		userGraph.Input = streamName
	}

	check, err := CheckGraphs(policyGraph, userGraph)
	if err != nil {
		return resp, err
	}
	resp.Verdict = check.Verdict
	resp.Warnings = check.Warnings
	if check.Verdict == expr.VerdictNR || (check.Verdict == expr.VerdictPR && !p.DeployOnPR) {
		// Step 5 gate: warn the user instead of deploying.
		return resp, nil
	}

	merged, err := MergeGraphs(policyGraph, userGraph)
	if err != nil {
		return resp, err
	}
	schema, err := p.Engine.StreamSchema(streamName)
	if err != nil {
		return resp, err
	}
	if _, err := merged.Validate(schema); err != nil {
		return resp, err
	}
	script, err := streamql.GenerateString(merged, schema)
	if err != nil {
		return resp, err
	}
	resp.Script = script

	// Step 3: single access per (user, stream) (§3.4). A request whose
	// merged query is byte-identical to the user's live grant is
	// answered idempotently with the existing handle (it conveys no new
	// information); a *different* query — the reconstruction-attack
	// vector — is rejected.
	if id, handle, existingScript, busy := p.Manager.Grant(user, streamName); busy {
		if existingScript == script {
			resp.QueryID = id
			resp.Handle = handle
			resp.Reused = true
			return resp, nil
		}
		return resp, fmt.Errorf("xacmlplus: user %q already holds query %s on stream %q (single access per stream, §3.4)",
			user, id, streamName)
	}
	sp.End(stageGraph)

	// Step 5: ship to the DSMS, return the handle.
	sp.Begin(stageEngine)
	queryID, handle, err := p.Engine.DeployScript(script)
	sp.End(stageEngine)
	if err != nil {
		return resp, fmt.Errorf("xacmlplus: engine deploy: %w", err)
	}
	if err := p.Manager.RegisterScript(result.PolicyID, user, streamName, queryID, handle, script); err != nil {
		_ = p.Engine.Withdraw(queryID)
		return resp, err
	}
	resp.QueryID = queryID
	resp.Handle = handle
	return resp, nil
}

// Release withdraws a user's live query on a stream.
func (p *PEP) Release(user, streamName string) error {
	id, ok := p.Manager.Release(user, streamName)
	if !ok {
		return fmt.Errorf("xacmlplus: user %q holds no query on stream %q", user, streamName)
	}
	err := p.Engine.Withdraw(id)
	p.auditEvent(audit.Event{Kind: "release", Subject: user, Resource: streamName, Detail: id})
	return err
}

// withdrawGrants stops the engine queries of grants killed by a policy
// change and records one "withdraw" audit event per affected (user,
// stream) grant — the per-subject signal the accountability governor
// scores (internal/governor).
func (p *PEP) withdrawGrants(policyID string, grants []Withdrawn) (ids []string, err error) {
	ids = make([]string, 0, len(grants))
	for _, g := range grants {
		ids = append(ids, g.QueryID)
		if werr := p.Engine.Withdraw(g.QueryID); werr != nil && err == nil {
			err = werr
		}
		p.auditEvent(audit.Event{Kind: "withdraw", Subject: g.User, Resource: g.Stream,
			PolicyID: policyID, Detail: g.QueryID})
	}
	return ids, err
}

// RemovePolicy removes a policy from the PDP and immediately withdraws
// every query graph it spawned (§3.3).
func (p *PEP) RemovePolicy(policyID string) (withdrawn []string, err error) {
	p.PDP.RemovePolicy(policyID)
	ids, err := p.withdrawGrants(policyID, p.Manager.OnPolicyRemovedGrants(policyID))
	p.auditEvent(audit.Event{Kind: "policy-remove", PolicyID: policyID,
		Detail: fmt.Sprintf("withdrew %v", ids)})
	return ids, err
}

// UpdatePolicy replaces a policy and withdraws the graphs spawned by the
// previous version (§3.3 treats update like removal plus re-add).
func (p *PEP) UpdatePolicy(pol *xacml.Policy) (withdrawn []string, err error) {
	ids, err := p.withdrawGrants(pol.PolicyID, p.Manager.OnPolicyRemovedGrants(pol.PolicyID))
	p.PDP.AddPolicy(pol)
	p.auditEvent(audit.Event{Kind: "policy-load", PolicyID: pol.PolicyID,
		Detail: fmt.Sprintf("withdrew %v", ids)})
	return ids, err
}
