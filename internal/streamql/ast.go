// Package streamql implements the StreamSQL subset that the paper's PEP
// exchanges with the StreamBase engine (Fig 4(b)):
//
//	CREATE INPUT STREAM name (field type, ...);
//	CREATE STREAM name;
//	CREATE OUTPUT STREAM name;
//	CREATE WINDOW wname (SIZE n ADVANCE m TUPLES);
//	SELECT <selectors> FROM src[wname] [WHERE cond] INTO dst;
//
// Scripts compile to dsms.QueryGraph chains and graphs render back to
// scripts, so the PEP can ship plain text to the engine exactly like the
// prototype did.
package streamql

import (
	"fmt"
	"strings"

	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/stream"
)

// Statement is one parsed StreamSQL statement.
type Statement interface {
	fmt.Stringer
	isStatement()
}

// CreateInputStream declares the source stream and its schema.
type CreateInputStream struct {
	Name   string
	Schema *stream.Schema
}

func (*CreateInputStream) isStatement() {}

// String renders the statement.
func (c *CreateInputStream) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE INPUT STREAM %s (", c.Name)
	for i := 0; i < c.Schema.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		f := c.Schema.Field(i)
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	b.WriteString(");")
	return b.String()
}

// CreateStream declares an intermediate or output stream.
type CreateStream struct {
	Name   string
	Output bool
}

func (*CreateStream) isStatement() {}

// String renders the statement.
func (c *CreateStream) String() string {
	if c.Output {
		return fmt.Sprintf("CREATE OUTPUT STREAM %s;", c.Name)
	}
	return fmt.Sprintf("CREATE STREAM %s;", c.Name)
}

// CreateWindow declares a named sliding window.
type CreateWindow struct {
	Name string
	Spec dsms.WindowSpec
}

func (*CreateWindow) isStatement() {}

// String renders the statement.
func (c *CreateWindow) String() string {
	unit := "TUPLES"
	if c.Spec.Type == dsms.WindowTime {
		unit = "MILLISECONDS"
	}
	return fmt.Sprintf("CREATE WINDOW %s (SIZE %d ADVANCE %d %s);", c.Name, c.Spec.Size, c.Spec.Step, unit)
}

// SelectItem is one selector of a SELECT statement: either a plain
// (possibly qualified) attribute, or an aggregate call with an alias.
type SelectItem struct {
	// Star is true for "SELECT *".
	Star bool
	// Attr is the attribute name (qualifier stripped).
	Attr string
	// Agg, when non-invalid, makes the item "Agg(Attr) AS Alias".
	Agg dsms.AggFunc
	// Alias is the output column name (aggregates only).
	Alias string
}

// String renders the selector.
func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Agg != dsms.AggInvalid {
		alias := s.Alias
		if alias == "" {
			alias = s.Agg.String() + strings.ToLower(s.Attr)
		}
		return fmt.Sprintf("%s(%s) AS %s", s.Agg, s.Attr, alias)
	}
	return s.Attr
}

// Select is "SELECT items FROM src[window] [WHERE cond] INTO dst;".
type Select struct {
	Items  []SelectItem
	From   string
	Window string // named window, empty if none
	Where  expr.Node
	Into   string
}

func (*Select) isStatement() {}

// String renders the statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From)
	if s.Window != "" {
		fmt.Fprintf(&b, "[%s]", s.Window)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	fmt.Fprintf(&b, " INTO %s;", s.Into)
	return b.String()
}

// Script is a parsed StreamSQL script.
type Script struct {
	Statements []Statement
}

// String renders the whole script, one statement per line.
func (s *Script) String() string {
	lines := make([]string, len(s.Statements))
	for i, st := range s.Statements {
		lines[i] = st.String()
	}
	return strings.Join(lines, "\n")
}
