package dsms

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// refAggregate is a line-for-line copy of the pre-refactor
// (slice-buffer, recompute-per-close) aggregate operator. It is the
// golden reference: the incremental ring-buffer implementation must
// produce bit-identical emissions on any input.
type refAggregate struct {
	win    WindowSpec
	aggs   []AggSpec
	poss   []int
	types  []stream.FieldType
	out    *stream.Schema
	buf    []stream.Tuple
	tstart int64
	skip   int64
}

func newRefAggregate(b *Box, in *stream.Schema) (*refAggregate, error) {
	out, err := b.OutputSchema(in)
	if err != nil {
		return nil, err
	}
	op := &refAggregate{win: b.Window, aggs: b.Aggs, out: out, tstart: -1}
	for _, a := range b.Aggs {
		pos, ft, ok := in.Lookup(a.Attr)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", a.Attr)
		}
		op.poss = append(op.poss, pos)
		op.types = append(op.types, ft)
	}
	return op, nil
}

func (a *refAggregate) process(t stream.Tuple) ([]stream.Tuple, error) {
	if a.win.Type == WindowTuple {
		return a.processTupleWindow(t)
	}
	return a.processTimeWindow(t)
}

func (a *refAggregate) processTupleWindow(t stream.Tuple) ([]stream.Tuple, error) {
	if a.skip > 0 {
		a.skip--
		return nil, nil
	}
	a.buf = append(a.buf, t)
	if int64(len(a.buf)) < a.win.Size {
		return nil, nil
	}
	ot, err := a.emit(a.buf[:a.win.Size])
	if err != nil {
		return nil, err
	}
	if a.win.Step >= int64(len(a.buf)) {
		a.skip = a.win.Step - int64(len(a.buf))
		a.buf = a.buf[:0]
	} else {
		a.buf = append(a.buf[:0:0], a.buf[a.win.Step:]...)
	}
	return []stream.Tuple{ot}, nil
}

func (a *refAggregate) processTimeWindow(t stream.Tuple) ([]stream.Tuple, error) {
	ts := t.ArrivalMillis
	if a.tstart < 0 {
		a.tstart = ts
	}
	var out []stream.Tuple
	for ts >= a.tstart+a.win.Size {
		var window []stream.Tuple
		for _, bt := range a.buf {
			if bt.ArrivalMillis >= a.tstart && bt.ArrivalMillis < a.tstart+a.win.Size {
				window = append(window, bt)
			}
		}
		if len(window) > 0 {
			ot, err := a.emit(window)
			if err != nil {
				return nil, err
			}
			out = append(out, ot)
		}
		a.tstart += a.win.Step
		keep := a.buf[:0]
		for _, bt := range a.buf {
			if bt.ArrivalMillis >= a.tstart {
				keep = append(keep, bt)
			}
		}
		a.buf = keep
	}
	a.buf = append(a.buf, t)
	return out, nil
}

func (a *refAggregate) emit(window []stream.Tuple) (stream.Tuple, error) {
	vals := make([]stream.Value, len(a.aggs))
	for i, spec := range a.aggs {
		v, err := computeAggregate(spec.Func, window, a.poss[i], a.types[i])
		if err != nil {
			return stream.Tuple{}, err
		}
		want := a.out.Field(i).Type
		if !v.IsNull() && v.Type() != want {
			cv, err := v.CoerceTo(want)
			if err == nil {
				v = cv
			}
		}
		vals[i] = v
	}
	out := stream.NewTuple(vals...)
	if n := len(window); n > 0 {
		out.ArrivalMillis = window[n-1].ArrivalMillis
		out.Seq = window[n-1].Seq
	}
	return out, nil
}

// goldenSchema has one column of every aggregatable flavour.
func goldenSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "i", Type: stream.TypeInt},
		stream.Field{Name: "d", Type: stream.TypeDouble},
		stream.Field{Name: "s", Type: stream.TypeString},
		stream.Field{Name: "t", Type: stream.TypeTimestamp},
	)
}

// goldenStream builds a randomized input: values (with nulls sprinkled
// in), monotone or out-of-order arrivals.
func goldenStream(rng *rand.Rand, n int, outOfOrder bool) []stream.Tuple {
	tuples := make([]stream.Tuple, n)
	ts := int64(1)
	for i := range tuples {
		mk := func(v stream.Value) stream.Value {
			if rng.Intn(10) == 0 {
				return stream.Null
			}
			return v
		}
		tuples[i] = stream.NewTuple(
			mk(stream.IntValue(int64(rng.Intn(2000)-1000))),
			mk(stream.DoubleValue(rng.NormFloat64()*100)),
			mk(stream.StringValue(fmt.Sprintf("s%03d", rng.Intn(50)))),
			mk(stream.TimestampMillis(int64(rng.Intn(100000)))),
		)
		step := int64(rng.Intn(40))
		if outOfOrder && rng.Intn(4) == 0 {
			step = -step
		}
		ts += step
		if ts < 1 {
			ts = 1
		}
		tuples[i].ArrivalMillis = ts
		tuples[i].Seq = uint64(i + 1)
	}
	return tuples
}

// valuesIdentical requires bit-level equality, not the numeric
// cross-type equality of Value.Equal: the refactor must not change the
// type OR the exact payload of any emission.
func valuesIdentical(a, b stream.Value) bool { return a == b }

// TestAggregateGoldenRandomized drives the incremental aggregate and
// the pre-refactor reference over the same randomized streams across
// window types, sizes, steps (including step ≪ size and hopping
// step > size) and every aggregate function, requiring identical
// emissions: same count, same values bit for bit, same provenance.
func TestAggregateGoldenRandomized(t *testing.T) {
	specs := []AggSpec{
		{Attr: "i", Func: AggSum},
		{Attr: "i", Func: AggMin},
		{Attr: "d", Func: AggAvg},
		{Attr: "d", Func: AggSum},
		{Attr: "d", Func: AggMax},
		{Attr: "s", Func: AggMax},
		{Attr: "s", Func: AggMin},
		{Attr: "t", Func: AggFirstVal},
		{Attr: "i", Func: AggLastVal},
		{Attr: "s", Func: AggCount},
	}
	windows := []WindowSpec{
		{Type: WindowTuple, Size: 1, Step: 1},
		{Type: WindowTuple, Size: 5, Step: 2},
		{Type: WindowTuple, Size: 64, Step: 1}, // step ≪ size
		{Type: WindowTuple, Size: 3, Step: 7},  // hopping
		{Type: WindowTime, Size: 100, Step: 100},
		{Type: WindowTime, Size: 500, Step: 25}, // step ≪ size
		{Type: WindowTime, Size: 50, Step: 200}, // hopping
	}
	schema := goldenSchema()
	for seed := int64(1); seed <= 3; seed++ {
		for _, ooo := range []bool{false, true} {
			input := goldenStream(rand.New(rand.NewSource(seed)), 600, ooo)
			for _, win := range windows {
				name := fmt.Sprintf("seed=%d/ooo=%v/%s", seed, ooo, win)
				t.Run(name, func(t *testing.T) {
					box := NewAggregateBox(win, specs...)
					ref, err := newRefAggregate(box, schema)
					if err != nil {
						t.Fatal(err)
					}
					op, err := newOperator(box, schema)
					if err != nil {
						t.Fatal(err)
					}
					var want, got []stream.Tuple
					for _, tu := range input {
						w, err := ref.process(tu)
						if err != nil {
							t.Fatalf("ref: %v", err)
						}
						want = append(want, w...)
						g, err := processOne(op, tu)
						if err != nil {
							t.Fatalf("new: %v", err)
						}
						got = append(got, g...)
					}
					if len(got) != len(want) {
						t.Fatalf("emitted %d windows, reference emitted %d", len(got), len(want))
					}
					for i := range want {
						if got[i].Seq != want[i].Seq || got[i].ArrivalMillis != want[i].ArrivalMillis {
							t.Fatalf("window %d provenance: got (seq=%d,ts=%d) want (seq=%d,ts=%d)",
								i, got[i].Seq, got[i].ArrivalMillis, want[i].Seq, want[i].ArrivalMillis)
						}
						for k := range want[i].Values {
							if !valuesIdentical(got[i].Values[k], want[i].Values[k]) {
								t.Fatalf("window %d, agg %s: got %v (%v) want %v (%v)",
									i, specs[k], got[i].Values[k], got[i].Values[k].Type(),
									want[i].Values[k], want[i].Values[k].Type())
							}
						}
					}
				})
			}
		}
	}
}

// TestTimeWindowCatchUpGap is the O(n²) regression scenario: a dense
// burst, then one tuple far in the future that closes thousands of
// overlapping windows at once (step ≪ size). The old implementation
// re-filtered the whole buffer once per close; the new one must both
// finish fast (the empty-window jump) and agree with the reference.
func TestTimeWindowCatchUpGap(t *testing.T) {
	schema := goldenSchema()
	box := NewAggregateBox(
		WindowSpec{Type: WindowTime, Size: 1000, Step: 2}, // step ≪ size
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "d", Func: AggAvg},
		AggSpec{Attr: "i", Func: AggCount},
	)
	ref, err := newRefAggregate(box, schema)
	if err != nil {
		t.Fatal(err)
	}
	op, err := newOperator(box, schema)
	if err != nil {
		t.Fatal(err)
	}
	var input []stream.Tuple
	mk := func(ts int64, v int64) stream.Tuple {
		tu := stream.NewTuple(
			stream.IntValue(v), stream.DoubleValue(float64(v)),
			stream.StringValue("x"), stream.TimestampMillis(ts),
		)
		tu.ArrivalMillis = ts
		tu.Seq = uint64(len(input) + 1)
		return tu
	}
	// Dense burst covering several overlapping windows.
	for ts := int64(1); ts <= 3000; ts += 3 {
		input = append(input, mk(ts, ts%97))
	}
	// A long gap: the single next arrival closes ~500k window positions.
	input = append(input, mk(2_000_000, 7))
	// And a trailing burst to check state survived the jump.
	for ts := int64(2_000_001); ts <= 2_002_000; ts += 5 {
		input = append(input, mk(ts, ts%89))
	}
	var want, got []stream.Tuple
	for _, tu := range input {
		w, err := ref.process(tu)
		if err != nil {
			t.Fatalf("ref: %v", err)
		}
		want = append(want, w...)
		g, err := processOne(op, tu)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		got = append(got, g...)
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d windows, reference emitted %d", len(got), len(want))
	}
	for i := range want {
		for k := range want[i].Values {
			if !valuesIdentical(got[i].Values[k], want[i].Values[k]) {
				t.Fatalf("window %d value %d: got %v want %v", i, k, got[i].Values[k], want[i].Values[k])
			}
		}
	}
}

// TestTupleWindowHugeIntSums pins the 2^53 degradation path: once a
// value or running sum leaves float64's exact-integer range the
// incremental sum flips to rescan-at-emit, so emissions still match
// the reference's per-window left-to-right scan bit for bit.
func TestTupleWindowHugeIntSums(t *testing.T) {
	schema := stream.MustSchema(stream.Field{Name: "i", Type: stream.TypeInt})
	box := NewAggregateBox(
		WindowSpec{Type: WindowTuple, Size: 4, Step: 1},
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "i", Func: AggAvg},
	)
	ref, err := newRefAggregate(box, schema)
	if err != nil {
		t.Fatal(err)
	}
	op, err := newOperator(box, schema)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{
		1, 2, 3, 1 << 60, (1 << 60) + 1, 5, -(1 << 61), 9,
		(1 << 53) - 1, 1, 1, 1, 1 << 53, 7, -(1 << 53), 2,
	}
	for i, v := range vals {
		tu := stream.NewTuple(stream.IntValue(v))
		tu.Seq = uint64(i + 1)
		tu.ArrivalMillis = int64(i + 1)
		w, err := ref.process(tu)
		if err != nil {
			t.Fatalf("ref: %v", err)
		}
		g, err := processOne(op, tu)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		if len(g) != len(w) {
			t.Fatalf("tuple %d: emitted %d windows, reference %d", i, len(g), len(w))
		}
		for j := range w {
			for k := range w[j].Values {
				if !valuesIdentical(g[j].Values[k], w[j].Values[k]) {
					t.Fatalf("tuple %d window %d agg %d: got %v want %v",
						i, j, k, g[j].Values[k], w[j].Values[k])
				}
			}
		}
	}
}
