package stream

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := IntValue(42); v.Type() != TypeInt || v.Int() != 42 {
		t.Errorf("IntValue: %v", v)
	}
	if v := DoubleValue(3.5); v.Type() != TypeDouble || v.Double() != 3.5 {
		t.Errorf("DoubleValue: %v", v)
	}
	if v := StringValue("hi"); v.Type() != TypeString || v.Str() != "hi" {
		t.Errorf("StringValue: %v", v)
	}
	if v := BoolValue(true); v.Type() != TypeBool || !v.Bool() {
		t.Errorf("BoolValue: %v", v)
	}
	now := time.Now().Truncate(time.Millisecond)
	if v := TimestampValue(now); !v.Time().Equal(now) {
		t.Errorf("TimestampValue: %v != %v", v.Time(), now)
	}
	if !Null.IsNull() || Null.Type() != TypeInvalid {
		t.Error("Null must be null")
	}
}

func TestValueCompareNumericCross(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{IntValue(2), DoubleValue(2.0), 0},
		{DoubleValue(1.5), IntValue(2), -1},
		{TimestampMillis(100), IntValue(50), 1},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = (%d,%v), want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestValueCompareIncompatible(t *testing.T) {
	if _, err := StringValue("x").Compare(IntValue(1)); err == nil {
		t.Error("string vs int must error")
	}
	if _, err := IntValue(1).Compare(StringValue("x")); err == nil {
		t.Error("int vs string must error")
	}
}

func TestValueEqualCrossTypes(t *testing.T) {
	if !IntValue(2).Equal(DoubleValue(2.0)) {
		t.Error("2 == 2.0 expected")
	}
	if IntValue(2).Equal(DoubleValue(2.5)) {
		t.Error("2 != 2.5 expected")
	}
	if IntValue(0).Equal(StringValue("0")) {
		t.Error("0 != \"0\" expected")
	}
	if !Null.Equal(Null) {
		t.Error("Null == Null expected")
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := IntValue(3).CoerceTo(TypeDouble)
	if err != nil || v.Double() != 3.0 {
		t.Errorf("int->double: %v %v", v, err)
	}
	v, err = DoubleValue(3.9).CoerceTo(TypeInt)
	if err != nil || v.Int() != 3 {
		t.Errorf("double->int: %v %v", v, err)
	}
	v, err = IntValue(1234).CoerceTo(TypeTimestamp)
	if err != nil || v.Millis() != 1234 {
		t.Errorf("int->timestamp: %v %v", v, err)
	}
	if _, err = StringValue("x").CoerceTo(TypeInt); err == nil {
		t.Error("string->int should fail")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(TypeInt, "-17")
	if err != nil || v.Int() != -17 {
		t.Errorf("int: %v %v", v, err)
	}
	v, err = ParseValue(TypeDouble, "2.5e3")
	if err != nil || v.Double() != 2500 {
		t.Errorf("double: %v %v", v, err)
	}
	v, err = ParseValue(TypeBool, "true")
	if err != nil || !v.Bool() {
		t.Errorf("bool: %v %v", v, err)
	}
	v, err = ParseValue(TypeTimestamp, "1700000000000")
	if err != nil || v.Millis() != 1700000000000 {
		t.Errorf("ts millis: %v %v", v, err)
	}
	if _, err = ParseValue(TypeInt, "abc"); err == nil {
		t.Error("bad int must fail")
	}
	if _, err = ParseValue(TypeTimestamp, "not-a-time"); err == nil {
		t.Error("bad timestamp must fail")
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		IntValue(-5), DoubleValue(math.Pi), StringValue("hello 'world'"),
		BoolValue(false), TimestampMillis(1700000000123), Null,
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !v.Equal(back) || v.Type() != back.Type() {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

// Property: int/double comparison is antisymmetric and consistent with
// float ordering.
func TestCompareProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := IntValue(int64(a)), IntValue(int64(b))
		ab, err1 := va.Compare(vb)
		ba, err2 := vb.Compare(va)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == -ba && (ab < 0) == (a < b) && (ab == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves doubles exactly.
func TestValueJSONDoubleProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true // JSON cannot carry these; engine never produces them
		}
		v := DoubleValue(x)
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Type() == TypeDouble && back.Double() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := IntValue(7).AsFloat(); !ok || f != 7 {
		t.Error("int AsFloat")
	}
	if f, ok := DoubleValue(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("double AsFloat")
	}
	if f, ok := BoolValue(true).AsFloat(); !ok || f != 1 {
		t.Error("bool AsFloat")
	}
	if _, ok := StringValue("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
}
