// Package coarsetime provides a coarse, cached wall clock for hot
// paths that stamp arrival times at multi-million-events/s rates: one
// background ticker refreshes a single atomic, so readers pay an atomic
// load instead of a time.Now call per event. Resolution is ~1ms — the
// same granularity the engine's arrival timestamps already have — and
// the cached value is monotone non-decreasing (a lagging ticker update
// never moves it backwards).
package coarsetime

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	once sync.Once
	now  atomic.Int64
)

// NowMillis returns the cached wall time in Unix milliseconds. The
// first call starts the refresher goroutine (a process-wide singleton
// that runs for the process lifetime).
func NowMillis() int64 {
	once.Do(start)
	return now.Load()
}

func start() {
	now.Store(time.Now().UnixMilli())
	go func() {
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for range t.C {
			advance(time.Now().UnixMilli())
		}
	}()
}

// advance moves the cached clock forward, never backwards.
func advance(ms int64) {
	for {
		cur := now.Load()
		if ms <= cur || now.CompareAndSwap(cur, ms) {
			return
		}
	}
}
