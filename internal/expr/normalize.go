package expr

import (
	"fmt"
	"strings"
)

// EliminateNot removes every NOT from the predicate by applying De
// Morgan's laws to AND/OR and Table 2 of the paper to simple expressions
// (NOT (x > v) becomes x <= v, and so on). This is Step 1 of the §3.5
// NR/PR checking procedure. The result contains only Simple, And, Or and
// Literal nodes.
func EliminateNot(n Node) Node {
	return elimNot(n, false)
}

func elimNot(n Node, negated bool) Node {
	switch x := n.(type) {
	case *Literal:
		if negated {
			return &Literal{Val: !x.Val}
		}
		return x
	case *Simple:
		if !negated {
			c := *x
			return &c
		}
		return &Simple{Attr: x.Attr, Op: x.Op.Negate(), Value: x.Value}
	case *Not:
		return elimNot(x.X, !negated)
	case *And:
		l, r := elimNot(x.L, negated), elimNot(x.R, negated)
		if negated {
			return &Or{L: l, R: r} // De Morgan: NOT(a AND b) = NOT a OR NOT b
		}
		return &And{L: l, R: r}
	case *Or:
		l, r := elimNot(x.L, negated), elimNot(x.R, negated)
		if negated {
			return &And{L: l, R: r} // De Morgan: NOT(a OR b) = NOT a AND NOT b
		}
		return &Or{L: l, R: r}
	default:
		panic(fmt.Sprintf("expr: elimNot: unknown node %T", n))
	}
}

// Conjunction is a conjunct of a DNF: the AND of its simple expressions.
// An empty Conjunction is the constant TRUE.
type Conjunction []*Simple

// String renders the conjunction as "s1 AND s2 AND ...".
func (c Conjunction) String() string {
	if len(c) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.String()
	}
	return strings.Join(parts, " AND ")
}

// DNF is a predicate in disjunctive normal form: the OR of its
// conjunctions. An empty DNF is the constant FALSE.
type DNF []Conjunction

// String renders the DNF as "(c1) OR (c2) OR ...".
func (d DNF) String() string {
	if len(d) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " OR ")
}

// postfixItem is one element of the postfix (RPN) form of a NOT-free
// predicate: either a simple-expression operand or an AND/OR operator.
type postfixItem struct {
	simple  *Simple  // operand, when non-nil
	literal *Literal // literal operand, when non-nil
	op      byte     // '&' or '|' for operators
}

// ToPostfix converts a NOT-free predicate into postfix form. This mirrors
// Step 2 of the paper, which converts the expression to postfix before
// evaluating it into DNF. It returns an error if the predicate still
// contains NOT nodes.
func ToPostfix(n Node) ([]postfixItem, error) {
	var out []postfixItem
	var walk func(Node) error
	walk = func(n Node) error {
		switch x := n.(type) {
		case *Simple:
			out = append(out, postfixItem{simple: x})
		case *Literal:
			out = append(out, postfixItem{literal: x})
		case *And:
			if err := walk(x.L); err != nil {
				return err
			}
			if err := walk(x.R); err != nil {
				return err
			}
			out = append(out, postfixItem{op: '&'})
		case *Or:
			if err := walk(x.L); err != nil {
				return err
			}
			if err := walk(x.R); err != nil {
				return err
			}
			out = append(out, postfixItem{op: '|'})
		case *Not:
			return fmt.Errorf("expr: ToPostfix requires NOT-free input (run EliminateNot first)")
		default:
			return fmt.Errorf("expr: ToPostfix: unknown node %T", n)
		}
		return nil
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	return out, nil
}

// ToDNF converts an arbitrary predicate into disjunctive normal form.
// Following §3.5 it first eliminates NOT, converts to postfix, and then
// evaluates the postfix expression with a stack: AND applies the
// distributive law to its two operands, OR concatenates them.
//
// TRUE literals become the empty conjunction; FALSE literals become the
// empty DNF; both propagate through AND/OR with the usual identities.
func ToDNF(n Node) (DNF, error) {
	nn := EliminateNot(n)
	post, err := ToPostfix(nn)
	if err != nil {
		return nil, err
	}
	var stack []DNF
	pop := func() DNF {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return d
	}
	for _, it := range post {
		switch {
		case it.simple != nil:
			stack = append(stack, DNF{Conjunction{it.simple}})
		case it.literal != nil:
			if it.literal.Val {
				stack = append(stack, DNF{Conjunction{}}) // TRUE
			} else {
				stack = append(stack, DNF{}) // FALSE
			}
		case it.op == '&':
			if len(stack) < 2 {
				return nil, fmt.Errorf("expr: malformed postfix expression")
			}
			b, a := pop(), pop()
			// Distributive law: (A1|A2|..) & (B1|B2|..) =
			// OR over all pairs (Ai & Bj).
			prod := make(DNF, 0, len(a)*len(b))
			for _, ca := range a {
				for _, cb := range b {
					merged := make(Conjunction, 0, len(ca)+len(cb))
					merged = append(merged, ca...)
					merged = append(merged, cb...)
					prod = append(prod, merged)
				}
			}
			stack = append(stack, prod)
		case it.op == '|':
			if len(stack) < 2 {
				return nil, fmt.Errorf("expr: malformed postfix expression")
			}
			b, a := pop(), pop()
			stack = append(stack, append(a, b...))
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("expr: malformed postfix expression (stack=%d)", len(stack))
	}
	return stack[0], nil
}

// FromDNF rebuilds an AST from a DNF, mainly for round-trip tests.
func FromDNF(d DNF) Node {
	if len(d) == 0 {
		return False
	}
	disj := make([]Node, 0, len(d))
	for _, c := range d {
		if len(c) == 0 {
			disj = append(disj, True)
			continue
		}
		conj := make([]Node, 0, len(c))
		for _, s := range c {
			cp := *s
			conj = append(conj, &cp)
		}
		disj = append(disj, NewAnd(conj...))
	}
	return NewOr(disj...)
}
