package experiments

import (
	"testing"
	"time"
)

// TestRunGovernor smoke-runs the accountability scenario with short
// phases: the abusive subject must be demoted (and measurably squeezed)
// while the clean subject keeps its service level, and both the
// demotion and the restore must land on an intact audit chain.
func TestRunGovernor(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock phases")
	}
	res, err := RunGovernor(GovernorOptions{
		Phase:    80 * time.Millisecond,
		Cooldown: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The CI acceptance bar is 10x / 99% (benchrunner); the unit smoke
	// allows a bit of scheduler noise on its much shorter phases.
	if err := res.CheckGovernor(5, 0.95); err != nil {
		t.Fatal(err)
	}
	if res.Governor.Events == 0 {
		t.Error("no scored events reached the governor")
	}
}
