// Package source generates the synthetic live data feeds the
// evaluation environment maintains: weather-station records with the
// §2.2 schema (the paper's testbed received records from mini weather
// stations at one-minute intervals) and GPS track points from personal
// mobile devices. Generators are deterministic for a fixed seed.
package source

import (
	"math"
	"math/rand"

	"repro/internal/stream"
)

// WeatherSchema is the §2.2 schema: (samplingtime, temperature,
// humidity, solar radiation, rain rate, wind speed, wind direction,
// barometer).
func WeatherSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "samplingtime", Type: stream.TypeTimestamp},
		stream.Field{Name: "temperature", Type: stream.TypeDouble},
		stream.Field{Name: "humidity", Type: stream.TypeDouble},
		stream.Field{Name: "solarradiation", Type: stream.TypeDouble},
		stream.Field{Name: "rainrate", Type: stream.TypeDouble},
		stream.Field{Name: "windspeed", Type: stream.TypeDouble},
		stream.Field{Name: "winddirection", Type: stream.TypeInt},
		stream.Field{Name: "barometer", Type: stream.TypeDouble},
	)
}

// GPSSchema describes the GPS track feed.
func GPSSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "samplingtime", Type: stream.TypeTimestamp},
		stream.Field{Name: "deviceid", Type: stream.TypeString},
		stream.Field{Name: "latitude", Type: stream.TypeDouble},
		stream.Field{Name: "longitude", Type: stream.TypeDouble},
		stream.Field{Name: "speed", Type: stream.TypeDouble},
		stream.Field{Name: "heading", Type: stream.TypeInt},
	)
}

// WeatherStation produces weather tuples every IntervalMillis of
// simulated time, with diurnal temperature cycles and bursty rain.
type WeatherStation struct {
	// StartMillis is the timestamp of the first sample.
	StartMillis int64
	// IntervalMillis is the sampling interval (paper: 30 s in the
	// example, 1 min in the testbed).
	IntervalMillis int64

	rng  *rand.Rand
	tick int64
	rain float64
}

// NewWeatherStation builds a deterministic station.
func NewWeatherStation(startMillis, intervalMillis int64, seed int64) *WeatherStation {
	return &WeatherStation{
		StartMillis:    startMillis,
		IntervalMillis: intervalMillis,
		rng:            rand.New(rand.NewSource(seed)),
	}
}

// Next produces the next sample.
func (w *WeatherStation) Next() stream.Tuple {
	t := w.StartMillis + w.tick*w.IntervalMillis
	dayFrac := float64(t%(24*3600*1000)) / float64(24*3600*1000)
	temp := 27 + 4*math.Sin(2*math.Pi*(dayFrac-0.25)) + w.rng.Float64()
	humidity := 75 - 10*math.Sin(2*math.Pi*(dayFrac-0.25)) + 5*w.rng.Float64()
	solar := math.Max(0, 800*math.Sin(math.Pi*dayFrac)) * (0.7 + 0.3*w.rng.Float64())

	// Rain: bursty regime switching; heavy tropical downpours
	// occasionally exceed the paper's 50 mm/h threshold.
	switch {
	case w.rain > 0 && w.rng.Float64() < 0.88:
		w.rain = math.Max(0, w.rain+(w.rng.Float64()-0.42)*12)
	case w.rain == 0 && w.rng.Float64() < 0.07:
		w.rain = 2 + w.rng.Float64()*40
		if w.rng.Float64() < 0.2 {
			w.rain += 40 // heavy storm onset
		}
	default:
		w.rain = 0
	}
	wind := 3 + w.rain*0.3 + w.rng.Float64()*5
	dir := w.rng.Intn(360)
	baro := 1009 + 4*math.Sin(2*math.Pi*dayFrac) + w.rng.Float64()

	w.tick++
	return stream.NewTuple(
		stream.TimestampMillis(t),
		stream.DoubleValue(round1(temp)),
		stream.DoubleValue(round1(humidity)),
		stream.DoubleValue(round1(solar)),
		stream.DoubleValue(round1(w.rain)),
		stream.DoubleValue(round1(wind)),
		stream.IntValue(int64(dir)),
		stream.DoubleValue(round1(baro)),
	)
}

// Take returns the next n samples.
func (w *WeatherStation) Take(n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// GPSTracker produces GPS track tuples for one device performing a
// random walk around a city centre.
type GPSTracker struct {
	DeviceID       string
	StartMillis    int64
	IntervalMillis int64

	rng      *rand.Rand
	tick     int64
	lat, lon float64
	speed    float64
	heading  float64
}

// NewGPSTracker builds a deterministic tracker starting near the given
// coordinates (e.g. Singapore: 1.35, 103.82).
func NewGPSTracker(deviceID string, lat, lon float64, startMillis, intervalMillis, seed int64) *GPSTracker {
	return &GPSTracker{
		DeviceID:       deviceID,
		StartMillis:    startMillis,
		IntervalMillis: intervalMillis,
		rng:            rand.New(rand.NewSource(seed)),
		lat:            lat,
		lon:            lon,
		speed:          30,
		heading:        float64(seed % 360),
	}
}

// Next produces the next track point.
func (g *GPSTracker) Next() stream.Tuple {
	t := g.StartMillis + g.tick*g.IntervalMillis
	g.tick++
	g.speed = math.Max(0, math.Min(90, g.speed+(g.rng.Float64()-0.5)*10))
	g.heading = math.Mod(g.heading+(g.rng.Float64()-0.5)*30+360, 360)
	// ~1e-5 degrees per metre; distance = speed(km/h) * interval.
	distKm := g.speed * float64(g.IntervalMillis) / 3600000.0
	g.lat += distKm / 111 * math.Cos(g.heading*math.Pi/180)
	g.lon += distKm / 111 * math.Sin(g.heading*math.Pi/180)
	return stream.NewTuple(
		stream.TimestampMillis(t),
		stream.StringValue(g.DeviceID),
		stream.DoubleValue(g.lat),
		stream.DoubleValue(g.lon),
		stream.DoubleValue(round1(g.speed)),
		stream.IntValue(int64(g.heading)),
	)
}

// Take returns the next n track points.
func (g *GPSTracker) Take(n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }
