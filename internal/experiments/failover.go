package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dsms"
	"repro/internal/dsmsd"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/runtime"
	"repro/internal/source"
	"repro/internal/stream"
	"repro/internal/streamql"
)

// FailoverOptions parameterises the replicated-failover scenario: a
// stream owned by a remote dsmsd shard and replicated to a local
// follower, killed mid-run at a scripted publish count and restarted
// later, measuring the blast radius of the outage (tuples errored
// during down detection), the failover latency (kill to first batch
// accepted on the promoted follower) and whether the restarted process
// is re-adopted and re-fed to zero lag.
type FailoverOptions struct {
	// Tuples is the total number of tuples offered (default 30000).
	Tuples int
	// BatchSize is the publish batch size (default 64).
	BatchSize int
	// KillFrac is the fraction of batches after which the primary's
	// dsmsd is killed (default 1/3); it is restarted at 2*KillFrac.
	KillFrac float64
	// Simnet applies the paper's 100 Mbps intranet profile to the
	// remote link.
	Simnet bool
	// NetworkSeed seeds the simulated-latency jitter.
	NetworkSeed int64
}

func (o FailoverOptions) withDefaults() FailoverOptions {
	if o.Tuples <= 0 {
		o.Tuples = 30000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.KillFrac <= 0 || o.KillFrac >= 0.5 {
		o.KillFrac = 1.0 / 3
	}
	if o.NetworkSeed == 0 {
		o.NetworkSeed = 7
	}
	return o
}

// FailoverResult reports one replicated-failover run.
type FailoverResult struct {
	Opts  FailoverOptions
	Stats metrics.RuntimeStats
	// Lost is the number of tuples accounted as errors — the blast
	// radius of the outage window (everything else was ingested; the
	// offered == ingested + dropped + errors invariant is verified).
	Lost uint64
	// FailoverLatency is the wall time from the kill to the first
	// batch accepted on the promoted follower.
	FailoverLatency time.Duration
	// Readopted reports whether the restarted dsmsd was re-adopted by
	// the probe before the run ended.
	Readopted bool
	// ResidualLag is the restarted follower's replication lag after
	// the final Flush (0 = fully re-fed from the retained log).
	ResidualLag uint64
	Elapsed     time.Duration
}

// String renders a one-line summary.
func (r FailoverResult) String() string {
	total := r.Stats.Total()
	offered := total.Offered
	if offered == 0 {
		offered = 1
	}
	return fmt.Sprintf("offered=%d ingested=%d lost=%d (%.2f%%), failover=%v, readopted=%v, residual lag=%d, elapsed=%v",
		total.Offered, total.Ingested, r.Lost,
		100*float64(r.Lost)/float64(offered),
		r.FailoverLatency.Round(time.Millisecond), r.Readopted, r.ResidualLag,
		r.Elapsed.Round(time.Millisecond))
}

// RunFailoverBlastRadius runs the kill/promote/restart/re-adopt cycle
// against a real dsmsd process over loopback and measures what the
// outage cost. The kill and restart fire at deterministic logical
// publish counts via netsim.Script; only the down-detection and
// re-adoption latencies are wall-clock.
func RunFailoverBlastRadius(o FailoverOptions) (FailoverResult, error) {
	o = o.withDefaults()

	var profile *netsim.Profile
	if o.Simnet {
		profile = netsim.Intranet100Mbps(o.NetworkSeed)
	}
	srv := dsmsd.NewServer(dsms.NewEngine("failover-primary"), profile)
	srv.TrustPrevalidated = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return FailoverResult{}, err
	}
	var srv2 *dsmsd.Server
	defer func() {
		srv.Close()
		srv.Engine.Close()
		if srv2 != nil {
			srv2.Close()
			srv2.Engine.Close()
		}
	}()

	readopted := make(chan struct{}, 1)
	rt := runtime.New("failover-bench", runtime.Options{
		Replication: 2,
		Backends: []runtime.BackendSpec{
			{Addr: addr, Remote: runtime.RemoteOptions{
				MaxReconnects:    2,
				ReconnectBackoff: 2 * time.Millisecond,
				HealthInterval:   5 * time.Millisecond,
				CallTimeout:      2 * time.Second,
				OnReadopt: func() error {
					select {
					case readopted <- struct{}{}:
					default:
					}
					return nil
				},
			}},
			{}, // local follower / failover target
		},
	})
	defer rt.Close()

	// A stream owned by the remote shard, plus a continuous filter so
	// the failover carries a deployed query along.
	schema := source.WeatherSchema()
	name := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("weather%d", i)
		if rt.ShardForStream(cand) == 0 {
			name = cand
			break
		}
	}
	if err := rt.CreateStream(name, schema); err != nil {
		return FailoverResult{}, err
	}
	g := dsms.NewQueryGraph(name, dsms.NewFilterBox(expr.MustParse("rainrate > 5")))
	script, err := streamql.GenerateString(g, schema)
	if err != nil {
		return FailoverResult{}, err
	}
	id, _, err := rt.DeployScript(script)
	if err != nil {
		return FailoverResult{}, err
	}

	ws := source.NewWeatherStation(0, 1000, o.NetworkSeed)
	pool := make([]stream.Tuple, 2048)
	for i := range pool {
		pool[i] = ws.Next()
	}

	batches := (o.Tuples + o.BatchSize - 1) / o.BatchSize
	killAt := uint64(float64(batches) * o.KillFrac)
	restartAt := 2 * killAt
	var killedAt time.Time
	fault := netsim.NewScript(
		netsim.Event{At: killAt, Name: "kill-primary", Do: func() {
			// Quiesce to a replication checkpoint first: everything
			// offered before the kill is ingested and on the follower,
			// so the measured loss is the down-detection window alone
			// (tuples in flight toward a dead shard during an
			// unflushed kill would be added on top of it).
			rt.Flush()
			srv.Close()
			srv.Engine.Close()
			killedAt = time.Now()
		}},
		netsim.Event{At: restartAt, Name: "restart-primary", Do: func() {
			// Wait for the probe to notice the death, then rebind the
			// same address with an empty replacement process.
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().Shards[0].Healthy && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			eng := dsms.NewEngine("failover-reborn")
			for time.Now().Before(deadline) {
				s := dsmsd.NewServer(eng, nil)
				s.TrustPrevalidated = true
				if _, err := s.Listen(addr); err == nil {
					srv2 = s
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			eng.Close()
		}},
	)

	res := FailoverResult{Opts: o}
	start := time.Now()
	published := 0
	for b := 0; b < batches; b++ {
		n := o.BatchSize
		if rest := o.Tuples - published; n > rest {
			n = rest
		}
		batch := make([]stream.Tuple, n)
		for i := range batch {
			batch[i] = pool[(published+i)%len(pool)]
		}
		_, _ = rt.PublishBatch(name, batch)
		published += n
		// First batch landing with the query on the follower marks the
		// end of the failover window.
		if res.FailoverLatency == 0 && !killedAt.IsZero() {
			if d, ok := rt.Query(id); ok && d.Shards()[0] == 1 {
				res.FailoverLatency = time.Since(killedAt)
			}
		}
		fault.Advance(1)
	}
	if !fault.Done() {
		return res, errors.New("experiments: fault script did not finish (kill/restart fractions out of range)")
	}
	// The promotion runs concurrently with the publish loop (down
	// detection is asynchronous); if the loop outran it, give it a
	// bounded window to land before measuring.
	if res.FailoverLatency == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if d, ok := rt.Query(id); ok && d.Shards()[0] == 1 {
				res.FailoverLatency = time.Since(killedAt)
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Give the probe a bounded window to re-adopt the restarted
	// process, then Flush: a re-adopted follower must be re-fed from
	// the retained replication log to zero lag.
	select {
	case <-readopted:
		res.Readopted = true
	case <-time.After(10 * time.Second):
	}
	rt.Flush()
	res.Elapsed = time.Since(start)
	res.Stats = rt.Stats()
	res.Lost = res.Stats.Total().Errors
	for _, l := range rt.ReplicaLag(name) {
		if l.Lag > res.ResidualLag {
			res.ResidualLag = l.Lag
		}
	}
	if err := checkInvariant(res.Stats); err != nil {
		return res, fmt.Errorf("failover accounting: %w", err)
	}
	return res, nil
}
