package expr

import (
	"fmt"

	"repro/internal/stream"
)

// Bound is a predicate compiled against a schema: attribute positions
// are resolved once at bind time, so per-tuple evaluation does no name
// lookups and allocates nothing. Semantics are identical to Eval on
// the same node and schema.
type Bound struct {
	root bnode
}

// Bind compiles a predicate for the given schema. It fails where
// Validate would fail on attribute references; callers that validated
// the node already can treat an error as a bug.
func Bind(n Node, s *stream.Schema) (*Bound, error) {
	root, err := bind(n, s)
	if err != nil {
		return nil, err
	}
	return &Bound{root: root}, nil
}

// Eval evaluates the compiled predicate against a tuple.
func (b *Bound) Eval(t stream.Tuple) (bool, error) {
	return b.root.eval(t)
}

type bnode interface {
	eval(t stream.Tuple) (bool, error)
}

func bind(n Node, s *stream.Schema) (bnode, error) {
	switch x := n.(type) {
	case *Literal:
		return bLit(x.Val), nil
	case *Not:
		c, err := bind(x.X, s)
		if err != nil {
			return nil, err
		}
		return &bNot{x: c}, nil
	case *And:
		l, err := bind(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, s)
		if err != nil {
			return nil, err
		}
		return &bAnd{l: l, r: r}, nil
	case *Or:
		l, err := bind(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, s)
		if err != nil {
			return nil, err
		}
		return &bOr{l: l, r: r}, nil
	case *Simple:
		pos, _, ok := s.Lookup(x.Attr)
		if !ok {
			return nil, fmt.Errorf("expr: unknown attribute %q", x.Attr)
		}
		return &bSimple{pos: pos, op: x.Op, value: x.Value, src: x}, nil
	default:
		return nil, fmt.Errorf("expr: cannot evaluate %T", n)
	}
}

type bLit bool

func (b bLit) eval(stream.Tuple) (bool, error) { return bool(b), nil }

type bNot struct{ x bnode }

func (b *bNot) eval(t stream.Tuple) (bool, error) {
	v, err := b.x.eval(t)
	return !v, err
}

type bAnd struct{ l, r bnode }

func (b *bAnd) eval(t stream.Tuple) (bool, error) {
	l, err := b.l.eval(t)
	if err != nil || !l {
		return false, err
	}
	return b.r.eval(t)
}

type bOr struct{ l, r bnode }

func (b *bOr) eval(t stream.Tuple) (bool, error) {
	l, err := b.l.eval(t)
	if err != nil || l {
		return l, err
	}
	return b.r.eval(t)
}

type bSimple struct {
	pos   int
	op    Op
	value stream.Value
	src   *Simple // for error rendering, matching evalSimple
}

func (b *bSimple) eval(t stream.Tuple) (bool, error) {
	if b.pos >= len(t.Values) {
		return false, fmt.Errorf("stream: tuple too short for field %q", b.src.Attr)
	}
	v := t.Values[b.pos]
	if v.IsNull() {
		// Nulls never satisfy a comparison (SQL-ish semantics).
		return false, nil
	}
	cmp, err := v.Compare(b.value)
	if err != nil {
		return false, fmt.Errorf("expr: %s: %w", b.src, err)
	}
	holds, ok := opHolds(b.op, cmp)
	if !ok {
		return false, fmt.Errorf("expr: invalid operator in %s", b.src)
	}
	return holds, nil
}
