package dsmsd

import (
	"testing"

	"repro/internal/stream"
)

// TestRemoteEngineOps covers the wire operations the sharded runtime's
// RemoteBackend depends on: ping, prevalidated batch ingest, flush,
// query count and stream drop.
func TestRemoteEngineOps(t *testing.T) {
	srv, cli := startServer(t)
	srv.TrustPrevalidated = true

	if err := cli.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := cli.CreateStream("s", testSchema()); err != nil {
		t.Fatal(err)
	}

	resp, err := cli.DeployScriptSchema("CREATE INPUT STREAM s (a int, b double); CREATE OUTPUT STREAM o; SELECT * FROM s WHERE a > 1 INTO o;")
	if err != nil {
		t.Fatalf("DeployScriptSchema: %v", err)
	}
	if resp.QueryID == "" || resp.Handle == "" {
		t.Fatalf("deploy = %+v", resp)
	}
	if resp.OutputSchema == nil || !resp.OutputSchema.Equal(testSchema()) {
		t.Errorf("output schema = %v, want input schema of a filter", resp.OutputSchema)
	}

	n, err := cli.QueryCount()
	if err != nil || n != 1 {
		t.Fatalf("QueryCount = %d, %v; want 1", n, err)
	}

	sub, err := srv.Engine.Subscribe(resp.QueryID)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Engine.Unsubscribe(resp.QueryID, sub)
	batch := []stream.Tuple{
		stream.NewTuple(stream.IntValue(1), stream.DoubleValue(0.5)),
		stream.NewTuple(stream.IntValue(2), stream.DoubleValue(1.5)),
	}
	if err := cli.IngestBatchPrevalidated("s", batch); err != nil {
		t.Fatalf("IngestBatchPrevalidated: %v", err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// After a flush, the a > 1 filter output is already buffered.
	select {
	case got := <-sub.C:
		if got.Values[0].Int() != 2 {
			t.Errorf("filtered tuple = %v, want a == 2", got)
		}
	default:
		t.Error("prevalidated batch never reached the filter query")
	}

	if err := cli.DropStream("s"); err != nil {
		t.Fatalf("DropStream: %v", err)
	}
	if _, err := cli.StreamSchema("s"); err == nil {
		t.Error("schema lookup after drop must fail")
	}
	if n, err := cli.QueryCount(); err != nil || n != 0 {
		t.Errorf("QueryCount after drop = %d, %v; want 0 (queries withdrawn with the stream)", n, err)
	}
	if err := cli.DropStream("s"); err == nil {
		t.Error("dropping an unknown stream must fail")
	}
}
