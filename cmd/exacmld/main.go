// Command exacmld runs the eXACML+ data server: PDP, PEP and query
// graph manager, fronting a dsmsd stream engine. Policies can be
// preloaded from a directory of XML files.
//
// With -embedded the server skips dsmsd and stands up an in-process
// sharded ingest runtime (-shards, -queue, -shed), pre-registers the
// weather and gps streams (gps partitioned by deviceid across shards)
// and exposes the TCP publish and subscribe paths, so data owners feed
// tuples through the batching/backpressure plane and consumers attach
// to granted handles on the same socket:
//
//	exacmld -embedded -shards 4 -shed dropoldest -policies ./policies
//
// -admission assigns the pre-registered streams a priority class and an
// optional token-bucket quota (name=class[:rate[:burst]]), and
// -block-class limits the block policy to classes at or above the
// threshold, shedding lower ones:
//
//	exacmld -embedded -admission "gps=critical,weather=besteffort:5000:256" \
//	    -shed dropnewest
//
// -shard-addrs turns shard slots into remote dsmsd processes for a
// mixed local/remote topology ("local" or an empty entry keeps a slot
// in-process); its length overrides -shards. -failover picks what
// happens to publishes bound for a downed remote shard (fail fast, or
// reroute to the next healthy shard):
//
//	exacmld -embedded -shard-addrs "local,127.0.0.1:7420,127.0.0.1:7430" \
//	    -failover reroute
//
// -replication keeps every single-shard stream on N shards (a primary
// plus N-1 asynchronously fed followers); when the primary's shard
// dies its queries fail over to the most caught-up follower with their
// window state intact, and a restarted dsmsd is re-adopted into the
// topology (see docs/OPERATIONS.md, "Replication & failover"):
//
//	exacmld -embedded -shard-addrs "127.0.0.1:7420,127.0.0.1:7430,127.0.0.1:7440" \
//	    -replication 2
//
// -governor starts the accountability governor over the audit log
// (§6): subjects accumulating denied requests or NR/PR violations have
// their bound streams demoted (class down, quota tightened) at runtime
// and restored after a cooldown. It needs -embedded (the governor
// drives the runtime's admission state) and enables in-memory auditing
// when -audit is not set. -governor-bind maps subjects to the streams
// they own:
//
//	exacmld -embedded -governor -governor-bind "mallory=weather" \
//	    -governor-threshold 5 -governor-cooldown 1m -policies ./policies
//
// -state-dir makes the control plane durable (embedded mode): the
// audit chain is persisted as hash-verified JSON lines, stream DDL and
// deployed queries as crash-consistent catalog snapshots, and window
// state as periodic checkpoints (-checkpoint-interval). On restart the
// whole control plane — streams, queries, window contents, and the
// governor's demotions with their cooldown clocks — is replayed from
// the directory before the server reports ready (see docs/OPERATIONS.md,
// "Durability & recovery"):
//
//	exacmld -embedded -state-dir /var/lib/exacml -checkpoint-interval 5s
//
// -ops-bind starts the ops HTTP listener: /metrics (Prometheus text),
// /healthz, /readyz (503 until every shard backend is healthy and any
// durable recovery has completed), /statsz (runtime, query, audit and
// recovery stats JSON, embedded mode) and /debug/pprof. -trace-sample
// tunes how often a published batch is traced through
// queue/seal/pipeline/push (see docs/OBSERVABILITY.md):
//
//	exacmld -embedded -ops-bind 127.0.0.1:9090 -trace-sample 256
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dsmsd"
	"repro/internal/durable"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/source"
	"repro/internal/telemetry"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// statszDoc is the embedded-mode /statsz payload: the runtime stats
// flattened at the top level (field-compatible with the pre-durability
// RuntimeStats-only payload, so `exacml watch` and scripts keyed on
// "shards" keep working) plus the query inventory, audit chain and
// boot-recovery summaries.
type statszDoc struct {
	metrics.RuntimeStats
	Queries  int                    `json:"queries"`
	Audit    *audit.Stats           `json:"audit,omitempty"`
	Recovery *durable.RecoveryStats `json:"recovery,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7421", "listen address")
	dsmsAddr := flag.String("dsms", "127.0.0.1:7420", "dsmsd engine address")
	policyDir := flag.String("policies", "", "directory of policy XML files to preload")
	simnet := flag.Bool("simnet", false, "simulate 100 Mbps intranet latency per request")
	deployOnPR := flag.Bool("deploy-on-pr", false, "deploy streams despite PR warnings")
	auditPath := flag.String("audit", "", "append-only audit log file (accountability extension)")
	embedded := flag.Bool("embedded", false, "run an in-process sharded runtime instead of dialing dsmsd")
	shards := flag.Int("shards", 4, "embedded mode: engine shard count")
	shardAddrs := flag.String("shard-addrs", "", `embedded mode: per-shard backend list "local,host:port,..." (overrides -shards)`)
	failover := flag.String("failover", "fail", "embedded mode: publishes to a downed remote shard fail|reroute")
	replication := flag.Int("replication", 0, "embedded mode: copies of each single-shard stream (primary + followers); 0/1 disables")
	queue := flag.Int("queue", 0, "embedded mode: per-shard queue capacity (0 = default)")
	shed := flag.String("shed", "block", "embedded mode: backpressure policy block|dropnewest|dropoldest")
	admission := flag.String("admission", "", `embedded mode: per-stream class/quota specs "name=class[:rate[:burst]],..."`)
	blockClass := flag.String("block-class", "besteffort", "embedded mode: block policy only blocks classes at or above this; lower classes are shed")
	gov := flag.Bool("governor", false, "embedded mode: run the accountability governor over the audit log")
	govBind := flag.String("governor-bind", "", `governor: subject-to-stream bindings "subject=stream[+stream...],..."`)
	govThreshold := flag.Float64("governor-threshold", 0, "governor: badness score triggering demotion (0 = default 5)")
	govHalfLife := flag.Duration("governor-halflife", 0, "governor: score decay half-life (0 = default 30s)")
	govCooldown := flag.Duration("governor-cooldown", 0, "governor: demotion duration after the last offence (0 = default 1m)")
	govClass := flag.String("governor-class", "besteffort", "governor: class demoted streams are moved to")
	govRate := flag.Float64("governor-rate", 0, "governor: quota rate (tuples/s) imposed while demoted (0 = default 100)")
	opsBind := flag.String("ops-bind", "", "ops HTTP listener (/metrics, /healthz, /readyz, /statsz, /debug/pprof); empty disables")
	traceSample := flag.Int("trace-sample", 0, "publish-path trace sampling period in tuples, rounded up to a power of two (0 = default 1024)")
	stateDir := flag.String("state-dir", "", "embedded mode: durable control-plane state directory (audit chain, catalog snapshots, window checkpoints); replayed on restart")
	ckInterval := flag.Duration("checkpoint-interval", 5*time.Second, "state-dir: period of the window checkpointer (0 = only the final checkpoint at shutdown)")
	mergeBuffer := flag.Int("merge-buffer", 0, "embedded mode: per-partition reorder buffer of the global re-aggregation merge stage (0 = default)")
	mergeLateness := flag.Duration("merge-lateness", 0, "embedded mode: force-release windows the slowest partition lags behind by this much (0 = wait indefinitely)")
	flag.Parse()

	if *stateDir != "" && !*embedded {
		log.Fatal("-state-dir needs -embedded (it persists the embedded runtime's control plane)")
	}
	if *stateDir != "" && *auditPath != "" {
		log.Fatal("-state-dir and -audit are mutually exclusive: the state dir owns the audit chain (at <state-dir>/audit.jsonl)")
	}

	var reg *telemetry.Registry
	if *opsBind != "" {
		reg = telemetry.NewRegistry()
	}

	// The ops listener starts before the (possibly slow) durable
	// recovery, behind swappable probes: /readyz serves 503 while the
	// control plane is still being replayed, flipping to 200 only once
	// the framework reports ready.
	var readyFn, statszFn atomic.Value
	readyFn.Store(func() error { return errors.New("exacmld: booting") })
	statszFn.Store(func() any { return nil })
	if *opsBind != "" {
		opsOpts := telemetry.OpsOptions{
			Registry: reg,
			Ready:    func() error { return readyFn.Load().(func() error)() },
		}
		if *embedded {
			opsOpts.Statsz = func() any { return statszFn.Load().(func() any)() }
		}
		ops, err := telemetry.ServeOps(*opsBind, opsOpts)
		if err != nil {
			log.Fatalf("ops listener: %v", err)
		}
		defer ops.Close()
		fmt.Printf("exacmld: ops listener on http://%s (/metrics /healthz /readyz /statsz /debug/pprof)\n", ops.Addr())
	}

	var auditLog *audit.Log
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("open audit log: %v", err)
		}
		defer f.Close()
		auditLog = audit.NewLog(f)
		fmt.Printf("exacmld: auditing decisions to %s\n", *auditPath)
	}

	var pep *xacmlplus.PEP
	var pub server.Publisher
	var governorRef *governor.Governor
	if *gov && !*embedded {
		log.Fatal("-governor needs -embedded (it drives the runtime's admission state)")
	}
	if *embedded {
		policy, err := runtime.ParsePolicy(*shed)
		if err != nil {
			log.Fatal(err)
		}
		bc, err := runtime.ParseClass(*blockClass)
		if err != nil {
			log.Fatal(err)
		}
		specs, err := runtime.ParseStreamSpecs(*admission)
		if err != nil {
			log.Fatal(err)
		}
		backends, err := runtime.ParseShardAddrs(*shardAddrs)
		if err != nil {
			log.Fatal(err)
		}
		fmode, err := runtime.ParseFailover(*failover)
		if err != nil {
			log.Fatal(err)
		}
		streamOpts := func(name string) []runtime.StreamOption {
			cfg, ok := specs[name]
			if !ok {
				return nil
			}
			delete(specs, name)
			return []runtime.StreamOption{runtime.WithConfig(cfg)}
		}
		copts := core.Options{
			Shards:             *shards,
			ShardAddrs:         backends,
			QueueSize:          *queue,
			Policy:             policy,
			BlockClass:         bc,
			Failover:           fmode,
			Replication:        *replication,
			MergeBuffer:        *mergeBuffer,
			MergeLateness:      *mergeLateness,
			Audit:              auditLog,
			Metrics:            reg,
			TraceSampleEvery:   *traceSample,
			StateDir:           *stateDir,
			CheckpointInterval: *ckInterval,
		}
		var bindings map[string][]string
		if *gov {
			demoteClass, err := runtime.ParseClass(*govClass)
			if err != nil {
				log.Fatal(err)
			}
			bindings, err = governor.ParseBindings(*govBind)
			if err != nil {
				log.Fatal(err)
			}
			// Bindings ride in the config (not post-construction Bind
			// calls) so the boot-time audit replay already knows which
			// streams each recovered demotion applies to.
			copts.Governor = &governor.Config{
				Threshold:   *govThreshold,
				HalfLife:    *govHalfLife,
				Cooldown:    *govCooldown,
				DemoteClass: demoteClass,
				DemoteRate:  *govRate,
				Bindings:    bindings,
			}
		}
		fw, err := core.Boot("cloud", copts)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}
		defer fw.Close()
		if fw.Governor != nil {
			governorRef = fw.Governor
			fmt.Printf("exacmld: accountability governor running (%d subject binding(s))\n", len(bindings))
		}
		if *stateDir != "" {
			st := fw.Durable.Stats()
			fmt.Printf("exacmld: durable state dir %s (recovered %d audit events, %d streams, %d queries, %d checkpoint parts in %dms)\n",
				*stateDir, st.AuditReplayed, st.StreamsRestored, st.QueriesRestored, st.CheckpointsRestored, st.DurationMillis)
		}
		// The built-in streams may already have been restored from the
		// state dir — in that case the persisted catalog (schema and
		// admission config) wins over the flags.
		restored := func(name string) bool {
			_, err := fw.Runtime.StreamSchema(name)
			return err == nil
		}
		if restored("weather") {
			delete(specs, "weather")
		} else if err := fw.RegisterStream("weather", source.WeatherSchema(), streamOpts("weather")...); err != nil {
			log.Fatalf("create weather stream: %v", err)
		}
		if restored("gps") {
			delete(specs, "gps")
		} else if err := fw.RegisterPartitionedStream("gps", source.GPSSchema(), "deviceid", streamOpts("gps")...); err != nil {
			log.Fatalf("create gps stream: %v", err)
		}
		for name := range specs {
			log.Fatalf("-admission names unknown stream %q (embedded streams: weather, gps)", name)
		}
		pep = fw.PEP
		pub = fw.Runtime
		readyFn.Store(fw.Ready)
		statszFn.Store(func() any {
			doc := statszDoc{RuntimeStats: fw.Runtime.Stats(), Queries: fw.Engine.QueryCount()}
			if fw.Audit != nil {
				st := fw.Audit.Stats()
				doc.Audit = &st
			}
			if fw.Durable != nil {
				st := fw.Durable.Stats()
				doc.Recovery = &st
			}
			return doc
		})
		kinds := make([]string, fw.Runtime.NumShards())
		for i := range kinds {
			kinds[i] = fw.Runtime.Backend(i).Kind()
		}
		fmt.Printf("exacmld: embedded runtime with %d shard(s) [%s], policy %s, failover %s (streams: weather, gps)\n",
			fw.Runtime.NumShards(), strings.Join(kinds, " "), policy, fmode)
	} else {
		engine, err := dsmsd.Dial(*dsmsAddr)
		if err != nil {
			log.Fatalf("connect to dsmsd at %s: %v", *dsmsAddr, err)
		}
		defer engine.Close()
		pep = xacmlplus.NewPEP(xacml.NewPDP(), engine)
		if reg != nil {
			pep.EnableTelemetry(reg)
			if auditLog != nil {
				auditLog.EnableTelemetry(reg)
			}
		}
		readyFn.Store(func() error { return nil })
	}
	pep.DeployOnPR = *deployOnPR
	if pep.Audit == nil && auditLog != nil {
		pep.Audit = auditLog // non-embedded path; embedded wires it via core.Options
	}

	if *policyDir != "" {
		files, err := filepath.Glob(filepath.Join(*policyDir, "*.xml"))
		if err != nil {
			log.Fatalf("scan policies: %v", err)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				log.Fatalf("read %s: %v", f, err)
			}
			pol, err := xacml.ParsePolicy(data)
			if err != nil {
				log.Fatalf("parse %s: %v", f, err)
			}
			if _, err := pep.UpdatePolicy(pol); err != nil {
				log.Fatalf("load %s: %v", f, err)
			}
			fmt.Printf("exacmld: loaded policy %q from %s\n", pol.PolicyID, f)
		}
	}

	var profile *netsim.Profile
	if *simnet {
		profile = netsim.Intranet100Mbps(2)
	}
	srv := server.New(pep, profile)
	engineDesc := *dsmsAddr
	if pub != nil {
		srv.AttachPublisher(pub)
		engineDesc = "embedded"
	}
	if governorRef != nil {
		srv.AttachGovernor(governorRef)
	}
	if reg != nil {
		srv.EnableTelemetry(reg)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("exacmld: data server listening on %s (engine %s, %d policies)\n",
		bound, engineDesc, pep.PDP.Count())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("exacmld: shutting down")
}
