// Package experiments reproduces the paper's evaluation (§4.2): it
// assembles the full eXACML+ deployment — DSMS engine behind a dsmsd
// server, data server with PDP/PEP, caching proxy, client — over
// loopback TCP with simulated intranet latency, drives the Table 3
// workloads through it, and produces the series behind Fig 6(a),
// Fig 6(b), Fig 7(a), Fig 7(b) and the policy-loading measurement.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/dsms"
	"repro/internal/dsmsd"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// Config describes one experiment environment.
type Config struct {
	// Params is the workload (Table 3 by default).
	Params workload.Params
	// NetworkSeed seeds the per-hop latency profiles; zero disables
	// network simulation entirely (pure loopback).
	NetworkSeed int64
	// ConnectDelay models StreamBase's slow initial connections; the
	// first deploys on the engine pay it (§4.2 observes such outliers
	// at the beginning of the request sequences). Zero disables.
	ConnectDelay time.Duration
	// Cache enables the proxy handle cache.
	Cache bool
}

// DefaultConfig is the full Table 3 setup with network simulation.
func DefaultConfig() Config {
	return Config{
		Params:       workload.TableThree(),
		NetworkSeed:  7,
		ConnectDelay: 250 * time.Millisecond,
		Cache:        false,
	}
}

// QuickConfig is a scaled-down variant for tests and -short benchmarks.
func QuickConfig(factor int) Config {
	c := DefaultConfig()
	c.Params = workload.Scaled(factor)
	c.ConnectDelay = 20 * time.Millisecond
	return c
}

// Env is a running eXACML+ deployment plus the direct-query baseline
// path.
type Env struct {
	Cfg      Config
	Workload *workload.Workload

	engine     *dsms.Engine
	dsmsServer *dsmsd.Server
	dataServer *server.Server
	proxy      *proxy.Proxy
	pepEngine  *dsmsd.Client

	proxyAddr string

	// ExacmlClient talks to the proxy (the paper's client interface).
	ExacmlClient *client.Client
	// DirectClient talks straight to the DSMS (the direct-query
	// baseline system).
	DirectClient *dsmsd.Client
}

// NewEnv builds and starts the whole stack.
func NewEnv(cfg Config) (*Env, error) {
	w, err := workload.Generate(cfg.Params)
	if err != nil {
		return nil, err
	}
	e := &Env{Cfg: cfg, Workload: w}
	fail := func(err error) (*Env, error) {
		e.Close()
		return nil, err
	}

	var dsmsNet, serverNet, proxyNet *netsim.Profile
	if cfg.NetworkSeed != 0 {
		dsmsNet = netsim.Intranet100Mbps(cfg.NetworkSeed)
		serverNet = netsim.Intranet100Mbps(cfg.NetworkSeed + 1)
		proxyNet = netsim.Intranet100Mbps(cfg.NetworkSeed + 2)
	}

	// Engine + streams.
	e.engine = dsms.NewEngine("cloud")
	for _, s := range w.Streams {
		if err := e.engine.CreateStream(s, w.Schema); err != nil {
			return fail(err)
		}
	}
	e.dsmsServer = dsmsd.NewServer(e.engine, dsmsNet)
	e.dsmsServer.ConnectDelay = cfg.ConnectDelay
	dsmsAddr, err := e.dsmsServer.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}

	// PEP over the remote engine.
	e.pepEngine, err = dsmsd.Dial(dsmsAddr)
	if err != nil {
		return fail(err)
	}
	pep := xacmlplus.NewPEP(xacml.NewPDP(), e.pepEngine)
	e.dataServer = server.New(pep, serverNet)
	serverAddr, err := e.dataServer.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}

	// Proxy.
	e.proxy, err = proxy.New(serverAddr, proxyNet)
	if err != nil {
		return fail(err)
	}
	e.proxy.SetCaching(cfg.Cache)
	proxyAddr, err := e.proxy.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	e.proxyAddr = proxyAddr

	// Clients.
	e.ExacmlClient, err = client.Dial(proxyAddr)
	if err != nil {
		return fail(err)
	}
	e.DirectClient, err = dsmsd.Dial(dsmsAddr)
	if err != nil {
		return fail(err)
	}
	return e, nil
}

// Close tears the stack down.
func (e *Env) Close() {
	if e.ExacmlClient != nil {
		_ = e.ExacmlClient.Close()
	}
	if e.DirectClient != nil {
		_ = e.DirectClient.Close()
	}
	if e.proxy != nil {
		e.proxy.Close()
	}
	if e.dataServer != nil {
		e.dataServer.Close()
	}
	if e.pepEngine != nil {
		_ = e.pepEngine.Close()
	}
	if e.dsmsServer != nil {
		e.dsmsServer.Close()
	}
	if e.engine != nil {
		e.engine.Close()
	}
}

// LoadPolicies uploads the workload's policies through the proxy,
// returning per-policy load times (the §4.2 policy-loading
// measurement: ~constant regardless of how many are already loaded).
func (e *Env) LoadPolicies() ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(e.Workload.PolicyXML))
	for _, xmlDoc := range e.Workload.PolicyXML {
		t0 := time.Now()
		if _, err := e.ExacmlClient.LoadPolicy([]byte(xmlDoc)); err != nil {
			return out, err
		}
		out = append(out, time.Since(t0))
	}
	return out, nil
}

// RunEXACML replays the item sequence through the access-control path
// and records a sample per request.
func (e *Env) RunEXACML(seq []int, series *metrics.Series) error {
	for i, idx := range seq {
		item := e.Workload.Items[idx]
		t0 := time.Now()
		resp, err := e.ExacmlClient.RequestAccessXML(item.RequestXML, item.UserQueryXML)
		total := time.Since(t0)
		if err != nil {
			return fmt.Errorf("experiments: request %d (item %d): %w", i, idx, err)
		}
		if !resp.Granted() {
			return fmt.Errorf("experiments: request %d (item %d) not granted: %s/%s %v",
				i, idx, resp.Decision, resp.Verdict, resp.Warnings)
		}
		series.Add(metrics.Sample{
			Seq:      i,
			Total:    total,
			PDP:      time.Duration(resp.PDPNanos),
			Graph:    time.Duration(resp.GraphNanos),
			Engine:   time.Duration(resp.EngineNanos),
			CacheHit: resp.Reused,
		})
	}
	return nil
}

// RunDirect replays the item sequence against the DSMS directly (the
// direct-query baseline).
func (e *Env) RunDirect(seq []int, series *metrics.Series) error {
	for i, idx := range seq {
		item := e.Workload.Items[idx]
		t0 := time.Now()
		_, _, err := e.DirectClient.DeployScript(item.Script)
		total := time.Since(t0)
		if err != nil {
			return fmt.Errorf("experiments: direct query %d (item %d): %w", i, idx, err)
		}
		series.Add(metrics.Sample{Seq: i, Total: total})
	}
	return nil
}

// Fig6aResult holds the two CDF series of Fig 6(a).
type Fig6aResult struct {
	Direct *metrics.Series
	EXACML *metrics.Series
}

// RunFig6a runs the unique query/request sequence through both systems.
func RunFig6a(cfg Config) (*Fig6aResult, error) {
	cfg.Cache = false
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if _, err := env.LoadPolicies(); err != nil {
		return nil, err
	}
	seq := env.Workload.UniqueSequence()
	res := &Fig6aResult{
		Direct: &metrics.Series{Name: "directQuery"},
		EXACML: &metrics.Series{Name: "eXACML+"},
	}
	if err := env.RunDirect(seq, res.Direct); err != nil {
		return nil, err
	}
	if err := env.RunEXACML(seq, res.EXACML); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig6bResult holds the three CDF series of Fig 6(b).
type Fig6bResult struct {
	Direct   *metrics.Series
	CacheOff *metrics.Series
	CacheOn  *metrics.Series
	// CacheHits/CacheMisses are the proxy counters of the cache-on run.
	CacheHits, CacheMisses uint64
}

// RunFig6b runs the Zipf-distributed sequence through the direct
// system, eXACML+ without cache, and eXACML+ with the proxy cache.
// Fresh environments per run keep grants independent.
func RunFig6b(cfg Config) (*Fig6bResult, error) {
	res := &Fig6bResult{
		Direct:   &metrics.Series{Name: "direct Query"},
		CacheOff: &metrics.Series{Name: "eXACML+ cache off"},
		CacheOn:  &metrics.Series{Name: "eXACML+ cache on"},
	}
	// Direct + cache-off share an env; the cache-on run uses a fresh one.
	cfg.Cache = false
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	seq := env.Workload.ZipfSequence(cfg.Params.NRequests, cfg.Params.Seed+1)
	if _, err := env.LoadPolicies(); err != nil {
		env.Close()
		return nil, err
	}
	if err := env.RunDirect(seq, res.Direct); err != nil {
		env.Close()
		return nil, err
	}
	if err := env.RunEXACML(seq, res.CacheOff); err != nil {
		env.Close()
		return nil, err
	}
	env.Close()

	cfg.Cache = true
	env2, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer env2.Close()
	if _, err := env2.LoadPolicies(); err != nil {
		return nil, err
	}
	// Same sequence (workload generation is deterministic).
	seq2 := env2.Workload.ZipfSequence(cfg.Params.NRequests, cfg.Params.Seed+1)
	if err := env2.RunEXACML(seq2, res.CacheOn); err != nil {
		return nil, err
	}
	res.CacheHits, res.CacheMisses = env2.ProxyStats()
	return res, nil
}

// ProxyStats exposes the proxy cache counters.
func (e *Env) ProxyStats() (hits, misses uint64) { return e.proxy.Stats() }

// Fig7Result is the per-request phase breakdown of Fig 7.
type Fig7Result struct {
	Series *metrics.Series
}

// RunFig7 measures the detailed processing time of n access-control
// requests over nPolicies loaded policies (Fig 7(a): 100/50, Fig 7(b):
// 1500/1000).
func RunFig7(cfg Config, nRequests, nPolicies int) (*Fig7Result, error) {
	cfg.Params.NRequests = nRequests
	cfg.Params.NPolicies = nPolicies
	cfg.Cache = false
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if _, err := env.LoadPolicies(); err != nil {
		return nil, err
	}
	res := &Fig7Result{Series: &metrics.Series{Name: fmt.Sprintf("AC requests (%d req / %d pol)", nRequests, nPolicies)}}
	if err := env.RunEXACML(env.Workload.UniqueSequence(), res.Series); err != nil {
		return nil, err
	}
	return res, nil
}

// RunPolicyLoad measures policy loading times over the configured
// workload and summarizes them.
func RunPolicyLoad(cfg Config) (metrics.Stats, error) {
	cfg.Cache = false
	env, err := NewEnv(cfg)
	if err != nil {
		return metrics.Stats{}, err
	}
	defer env.Close()
	times, err := env.LoadPolicies()
	if err != nil {
		return metrics.Stats{}, err
	}
	return metrics.Summarize(times), nil
}
