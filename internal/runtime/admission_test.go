package runtime

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestClassRoundTrip(t *testing.T) {
	for _, c := range []Class{BestEffort, Normal, Critical} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseClass(""); err != nil || got != Normal {
		t.Errorf("empty class = %v, %v, want Normal", got, err)
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Error("bogus class must fail")
	}
}

// TestRegistrationRejectsBadConfig guards the library API: classes
// outside the defined range and negative rates must fail at
// registration instead of panicking the publish path later.
func TestRegistrationRejectsBadConfig(t *testing.T) {
	rt := New("badcfg", Options{Shards: 2})
	defer rt.Close()
	if err := rt.CreateStream("s", testSchema(), WithClass(Class(3))); err == nil {
		t.Fatal("out-of-range class must fail")
	}
	if err := rt.CreateStream("s", testSchema(), WithClass(Class(-1))); err == nil {
		t.Fatal("negative class must fail")
	}
	if err := rt.CreateStream("s", testSchema(), WithQuota(-5, 0)); err == nil {
		t.Fatal("negative rate must fail")
	}
	if err := rt.CreateStream("s", testSchema(), WithQuota(math.NaN(), 0)); err == nil {
		t.Fatal("NaN rate must fail")
	}
	if err := rt.CreateStream("s", testSchema(), WithQuota(math.Inf(1), 0)); err == nil {
		t.Fatal("infinite rate must fail")
	}
	if err := rt.CreateStream("s", testSchema(), WithQuota(1e18, 0)); err == nil {
		t.Fatal("overflowing rate must fail")
	}
	if err := rt.CreatePartitionedStream("gps", gpsSchema(), "deviceid", WithClass(Class(9))); err == nil {
		t.Fatal("out-of-range class must fail for partitioned streams")
	}
	// The failed registrations left nothing behind.
	if err := rt.CreateStream("s", testSchema(), WithClass(Critical), WithQuota(100, 10)); err != nil {
		t.Fatal(err)
	}
	row := streamRow(t, rt.Stats(), "s")
	if row.Class != "critical" || row.Rate != 100 || row.Burst != 10 {
		t.Fatalf("stream row = %+v", row)
	}
	// Burst defaulting (one second of rate) is normalized at
	// registration, so stats report what the bucket enforces.
	if err := rt.CreateStream("defburst", testSchema(), WithQuota(250.5, 0)); err != nil {
		t.Fatal(err)
	}
	if row := streamRow(t, rt.Stats(), "defburst"); row.Burst != 251 {
		t.Fatalf("defaulted burst = %d, want ceil(rate) = 251", row.Burst)
	}
}

func TestParseStreamSpecs(t *testing.T) {
	specs, err := ParseStreamSpecs("Weather=besteffort:5000:256, gps=critical")
	if err != nil {
		t.Fatal(err)
	}
	if got := specs["weather"]; got.Class != BestEffort || got.Rate != 5000 || got.Burst != 256 {
		t.Fatalf("weather spec = %+v", got)
	}
	if got := specs["gps"]; got.Class != Critical || got.Rate != 0 {
		t.Fatalf("gps spec = %+v", got)
	}
	if specs, err := ParseStreamSpecs(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty spec = %v, %v", specs, err)
	}
	for _, bad := range []string{"weather", "weather=vip", "w=normal:x", "w=normal:5:y", "w=normal:1:2:3",
		"w=normal:nan", "w=normal:+inf", "w=normal:1e13"} {
		if _, err := ParseStreamSpecs(bad); err == nil {
			t.Errorf("spec %q must fail", bad)
		}
	}
}

// streamRow finds a stream's row in a stats snapshot.
func streamRow(t *testing.T, st metrics.RuntimeStats, name string) metrics.StreamStat {
	t.Helper()
	for _, row := range st.Streams {
		if row.Stream == name {
			return row
		}
	}
	t.Fatalf("no stats row for stream %q", name)
	return metrics.StreamStat{}
}

// checkStreamInvariant asserts the post-flush per-stream accounting.
func checkStreamInvariant(t *testing.T, row metrics.StreamStat) {
	t.Helper()
	if row.Offered != row.Ingested+row.Dropped+row.Errors {
		t.Fatalf("stream %s: offered %d != ingested %d + dropped %d + errors %d",
			row.Stream, row.Offered, row.Ingested, row.Dropped, row.Errors)
	}
	if row.Shed > row.Dropped {
		t.Fatalf("stream %s: shed %d > dropped %d", row.Stream, row.Shed, row.Dropped)
	}
}

// TestClassAwareDropNewest fills a paused shard with BestEffort tuples,
// then publishes Critical tuples: each must evict a queued BestEffort
// victim instead of being dropped.
func TestClassAwareDropNewest(t *testing.T) {
	rt := New("cls", Options{Shards: 1, QueueSize: 128, BatchSize: 16, Policy: DropNewest})
	defer rt.Close()
	if err := rt.CreateStream("be", testSchema(), WithClass(BestEffort)); err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateStream("crit", testSchema(), WithClass(Critical)); err != nil {
		t.Fatal(err)
	}
	passthrough(t, rt, "be")
	passthrough(t, rt, "crit")
	rt.PauseDrain()

	flood := make([]stream.Tuple, 1000)
	for i := range flood {
		flood[i] = mkTuple(float64(i), 1)
	}
	if n, err := rt.PublishBatch("be", flood); err != nil || n != 128 {
		t.Fatalf("flood: n=%d err=%v, want 128 accepted", n, err)
	}
	urgent := make([]stream.Tuple, 100)
	for i := range urgent {
		urgent[i] = mkTuple(float64(i), 2)
	}
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		n, err = rt.PublishBatch("crit", urgent)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Critical publish blocked on a paused full shard")
	}
	if err != nil || n != 100 {
		t.Fatalf("critical: n=%d err=%v, want 100 accepted", n, err)
	}

	rt.ResumeDrain()
	rt.Flush()
	st := rt.Stats()
	crit := streamRow(t, st, "crit")
	be := streamRow(t, st, "be")
	if crit.Ingested != 100 || crit.Dropped != 0 {
		t.Fatalf("critical row = %+v, want 100 ingested, 0 dropped", crit)
	}
	if be.Ingested != 28 || be.Dropped != 972 {
		t.Fatalf("besteffort row = %+v, want 28 ingested, 972 dropped", be)
	}
	checkStreamInvariant(t, crit)
	checkStreamInvariant(t, be)
	if len(st.Classes) != 2 {
		t.Fatalf("classes = %+v, want 2 rows", st.Classes)
	}
	for _, c := range st.Classes {
		if c.Offered != c.Ingested+c.Dropped+c.Errors {
			t.Fatalf("class %s accounting violated: %+v", c.Class, c)
		}
	}
}

// TestClassAwareDropOldest checks that a low-class tuple never evicts a
// queued higher-class one: with the queue full of Critical, incoming
// BestEffort is dropped even under DropOldest.
func TestClassAwareDropOldest(t *testing.T) {
	rt := New("old", Options{Shards: 1, QueueSize: 8, BatchSize: 4, Policy: DropOldest})
	defer rt.Close()
	if err := rt.CreateStream("be", testSchema(), WithClass(BestEffort)); err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateStream("crit", testSchema(), WithClass(Critical)); err != nil {
		t.Fatal(err)
	}
	passthrough(t, rt, "be")
	passthrough(t, rt, "crit")
	rt.PauseDrain()

	for i := 0; i < 8; i++ {
		if err := rt.Publish("crit", mkTuple(float64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := rt.Publish("be", mkTuple(float64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	rt.ResumeDrain()
	rt.Flush()
	st := rt.Stats()
	crit := streamRow(t, st, "crit")
	be := streamRow(t, st, "be")
	if crit.Ingested != 8 || crit.Dropped != 0 {
		t.Fatalf("critical row = %+v, want all 8 ingested", crit)
	}
	if be.Ingested != 0 || be.Dropped != 5 {
		t.Fatalf("besteffort row = %+v, want all 5 dropped", be)
	}
	checkStreamInvariant(t, crit)
	checkStreamInvariant(t, be)
}

// TestBlockClassSheds checks that with BlockClass set, Block applies
// backpressure only at or above the threshold: BestEffort publishers
// are shed instead of waiting on a full queue.
func TestBlockClassSheds(t *testing.T) {
	rt := New("blockcls", Options{Shards: 1, QueueSize: 8, BatchSize: 4, Policy: Block, BlockClass: Normal})
	defer rt.Close()
	if err := rt.CreateStream("be", testSchema(), WithClass(BestEffort)); err != nil {
		t.Fatal(err)
	}
	passthrough(t, rt, "be")
	rt.PauseDrain()

	tuples := make([]stream.Tuple, 20)
	for i := range tuples {
		tuples[i] = mkTuple(float64(i), 1)
	}
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		n, err = rt.PublishBatch("be", tuples)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BestEffort publish blocked despite BlockClass=Normal")
	}
	if err != nil || n != 8 {
		t.Fatalf("accepted = %d, err = %v, want 8", n, err)
	}
	rt.ResumeDrain()
	rt.Flush()
	be := streamRow(t, rt.Stats(), "be")
	if be.Ingested != 8 || be.Dropped != 12 {
		t.Fatalf("besteffort row = %+v", be)
	}
	checkStreamInvariant(t, be)
}

// TestQuotaSplitBatch drives a batch across a quota boundary: the
// token bucket admits only a prefix, the rest is shed before reaching
// any shard, and the accounting stays consistent.
func TestQuotaSplitBatch(t *testing.T) {
	rt := New("quota", Options{Shards: 1})
	defer rt.Close()
	// A near-zero refill rate makes the bucket a fixed budget of 5.
	if err := rt.CreateStream("s", testSchema(), WithQuota(1e-9, 5)); err != nil {
		t.Fatal(err)
	}
	dep := passthrough(t, rt, "s")
	sub, err := rt.Subscribe(dep.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	batch := make([]stream.Tuple, 8)
	for i := range batch {
		batch[i] = mkTuple(float64(i), 1)
	}
	v, err := rt.PublishBatchVerdict("s", batch)
	if err != nil {
		t.Fatal(err)
	}
	if v.Offered != 8 || v.Accepted != 5 || v.Shed != 3 {
		t.Fatalf("verdict = %+v, want offered 8, accepted 5, shed 3", v)
	}
	// A follow-up batch is fully shed: the budget is exhausted.
	v, err = rt.PublishBatchVerdict("s", batch[:2])
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted != 0 || v.Shed != 2 {
		t.Fatalf("exhausted verdict = %+v, want 0 accepted, 2 shed", v)
	}
	rt.Flush()

	row := streamRow(t, rt.Stats(), "s")
	if row.Offered != 10 || row.Shed != 5 || row.Dropped != 5 || row.Ingested != 5 {
		t.Fatalf("stream row = %+v", row)
	}
	checkStreamInvariant(t, row)
	// Quota sheds never reach a shard: shard counters see only the
	// admitted prefix.
	if total := rt.Stats().Total(); total.Offered != 5 || total.Ingested != 5 {
		t.Fatalf("shard total = %+v, want only the 5 admitted tuples", total)
	}
	// The admitted tuples are the batch prefix, in order.
	for want := 0; want < 5; want++ {
		select {
		case tu := <-sub.C:
			if got := tu.Values[0].Double(); got != float64(want) {
				t.Fatalf("admitted tuple = %v, want %d", got, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("missing admitted tuple %d", want)
		}
	}
}

// TestQuotaOnPartitionedStream checks the quota is enforced before the
// key split, so a partial grant admits a cross-shard prefix.
func TestQuotaOnPartitionedStream(t *testing.T) {
	rt := New("pquota", Options{Shards: 4})
	defer rt.Close()
	if err := rt.CreatePartitionedStream("gps", gpsSchema(), "deviceid", WithClass(Critical), WithQuota(1e-9, 6)); err != nil {
		t.Fatal(err)
	}
	batch := make([]stream.Tuple, 10)
	for i := range batch {
		batch[i] = stream.NewTuple(stream.StringValue(strings.Repeat("d", i+1)), stream.DoubleValue(float64(i)))
	}
	v, err := rt.PublishBatchVerdict("gps", batch)
	if err != nil {
		t.Fatal(err)
	}
	if v.Offered != 10 || v.Accepted != 6 || v.Shed != 4 {
		t.Fatalf("verdict = %+v", v)
	}
	rt.Flush()
	row := streamRow(t, rt.Stats(), "gps")
	if row.Class != "critical" || row.Offered != 10 || row.Shed != 4 || row.Ingested != 6 {
		t.Fatalf("stream row = %+v", row)
	}
	checkStreamInvariant(t, row)
}
