package core

import (
	"strings"
	"testing"

	"repro/internal/source"
	"repro/internal/stream"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func newFramework(t *testing.T) *Framework {
	t.Helper()
	f := New("test")
	t.Cleanup(f.Close)
	if err := f.RegisterStream("weather", source.WeatherSchema()); err != nil {
		t.Fatal(err)
	}
	return f
}

func ltaPolicy() *xacml.Policy {
	return xacml.NewPermitPolicy("nea:weather:lta",
		xacml.NewTarget("LTA", "weather", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition, "rainrate > 5"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationMap,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "samplingtime"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "rainrate"),
			},
		},
	)
}

func TestFrameworkGrantAndDataFlow(t *testing.T) {
	f := newFramework(t)
	if err := f.AddPolicy(ltaPolicy()); err != nil {
		t.Fatal(err)
	}
	resp, err := RequireHandle(f.Request("LTA", "weather", "read", nil))
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	sub, err := f.Subscribe(resp.Handle)
	if err != nil {
		t.Fatal(err)
	}
	ws := source.NewWeatherStation(0, 30000, 1)
	published, passed := 0, 0
	schema := source.WeatherSchema()
	for i := 0; i < 500; i++ {
		tu := ws.Next()
		v, _ := tu.Get(schema, "rainrate")
		if v.Double() > 5 {
			passed++
		}
		if err := f.Publish("weather", tu); err != nil {
			t.Fatal(err)
		}
		published++
	}
	f.Flush()
	got := 0
	for len(sub.C) > 0 {
		tu := <-sub.C
		if len(tu.Values) != 2 {
			t.Fatalf("projected arity = %d", len(tu.Values))
		}
		if tu.Values[1].Double() <= 5 {
			t.Fatalf("rainrate %v leaked through filter", tu.Values[1])
		}
		got++
	}
	if got != passed {
		t.Errorf("delivered %d tuples, want %d of %d", got, passed, published)
	}
}

func TestFrameworkDenyWithoutPolicy(t *testing.T) {
	f := newFramework(t)
	resp, err := f.Request("LTA", "weather", "read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted() {
		t.Error("granted without policy")
	}
	if _, err := RequireHandle(resp, nil); err == nil || !strings.Contains(err.Error(), "not granted") {
		t.Errorf("RequireHandle error = %v", err)
	}
}

func TestFrameworkPolicyXMLLifecycle(t *testing.T) {
	f := newFramework(t)
	data, err := ltaPolicy().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.LoadPolicy(data)
	if err != nil || id != "nea:weather:lta" {
		t.Fatalf("LoadPolicy: (%q,%v)", id, err)
	}
	if _, err := RequireHandle(f.Request("LTA", "weather", "read", nil)); err != nil {
		t.Fatal(err)
	}
	withdrawn, err := f.RemovePolicy(id)
	if err != nil || len(withdrawn) != 1 {
		t.Fatalf("RemovePolicy: (%v,%v)", withdrawn, err)
	}
	if f.Engine.QueryCount() != 0 {
		t.Error("graphs not withdrawn")
	}
	if _, err := f.LoadPolicy([]byte("<broken")); err == nil {
		t.Error("bad XML must fail")
	}
}

func TestFrameworkRelease(t *testing.T) {
	f := newFramework(t)
	if err := f.AddPolicy(ltaPolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := RequireHandle(f.Request("LTA", "weather", "read", nil)); err != nil {
		t.Fatal(err)
	}
	if err := f.Release("LTA", "weather"); err != nil {
		t.Fatal(err)
	}
	if f.Engine.QueryCount() != 0 {
		t.Error("release should withdraw the query")
	}
	if err := f.AddPolicy(&xacml.Policy{}); err == nil {
		t.Error("invalid policy must fail")
	}
}

func TestFrameworkUserQueryWarning(t *testing.T) {
	f := newFramework(t)
	if err := f.AddPolicy(ltaPolicy()); err != nil {
		t.Fatal(err)
	}
	uq := &xacmlplus.UserQuery{
		Stream: xacmlplus.StreamRef{Name: "weather"},
		Map:    &xacmlplus.MapClause{Attributes: []string{"barometer"}},
	}
	resp, err := f.Request("LTA", "weather", "read", uq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted() || resp.Verdict.String() != "NR" {
		t.Errorf("barometer is withheld; expected NR, got %+v", resp)
	}
	_ = stream.TypeDouble
}
