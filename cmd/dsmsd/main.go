// Command dsmsd runs the stand-alone Aurora-style stream engine server
// (the reproduction's StreamBase process). It pre-registers the
// synthetic weather and GPS streams and, with -feed, publishes live
// synthetic data into them. With -bare it registers nothing — the
// shape a remote shard of an exacmld runtime wants, since the runtime
// creates streams over the wire itself (exacmld -shard-addrs).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/dsms"
	"repro/internal/dsmsd"
	"repro/internal/netsim"
	"repro/internal/source"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "listen address")
	name := flag.String("name", "cloud", "engine name used in stream handle URIs")
	feed := flag.Bool("feed", false, "publish synthetic weather/GPS data continuously")
	interval := flag.Duration("interval", time.Second, "synthetic feed interval")
	simnet := flag.Bool("simnet", false, "simulate 100 Mbps intranet latency per request")
	bare := flag.Bool("bare", false, "register no built-in streams (remote shard of an exacmld runtime)")
	trust := flag.Bool("trust-prevalidated", false, "skip schema re-validation for batches a trusted runtime marked prevalidated")
	opsBind := flag.String("ops-bind", "", "ops HTTP listener (/metrics, /healthz, /readyz, /statsz, /debug/pprof); empty disables")
	traceSample := flag.Int("trace-sample", 1024, "trace sampling period in ingested tuples, rounded up to a power of two")
	flag.Parse()

	engine := dsms.NewEngine(*name)
	defer engine.Close()
	streams := "none (-bare)"
	if !*bare {
		if err := engine.CreateStream("weather", source.WeatherSchema()); err != nil {
			log.Fatalf("create weather stream: %v", err)
		}
		if err := engine.CreateStream("gps", source.GPSSchema()); err != nil {
			log.Fatalf("create gps stream: %v", err)
		}
		streams = "weather, gps"
	} else if *feed {
		log.Fatal("-feed needs the built-in streams; drop -bare")
	}

	var profile *netsim.Profile
	if *simnet {
		profile = netsim.Intranet100Mbps(1)
	}
	srv := dsmsd.NewServer(engine, profile)
	srv.TrustPrevalidated = *trust
	if *opsBind != "" {
		reg := telemetry.NewRegistry()
		srv.EnableTelemetry(reg, *traceSample)
		ops, err := telemetry.ServeOps(*opsBind, telemetry.OpsOptions{
			Registry: reg,
			Statsz: func() any {
				return map[string]any{
					"engine":  *name,
					"streams": engine.Streams(),
					"queries": engine.QueryCount(),
				}
			},
		})
		if err != nil {
			log.Fatalf("ops listener: %v", err)
		}
		defer ops.Close()
		fmt.Printf("dsmsd: ops listener on http://%s\n", ops.Addr())
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("dsmsd: engine %q listening on %s (streams: %s)\n", *name, bound, streams)

	if *feed {
		go func() {
			ws := source.NewWeatherStation(time.Now().UnixMilli(), interval.Milliseconds(), 1)
			gt := source.NewGPSTracker("dev1", 1.35, 103.82, time.Now().UnixMilli(), interval.Milliseconds(), 2)
			tick := time.NewTicker(*interval)
			defer tick.Stop()
			for range tick.C {
				if err := engine.Ingest("weather", ws.Next()); err != nil {
					log.Printf("feed weather: %v", err)
				}
				if err := engine.Ingest("gps", gt.Next()); err != nil {
					log.Printf("feed gps: %v", err)
				}
			}
		}()
		fmt.Printf("dsmsd: feeding synthetic data every %v\n", *interval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("dsmsd: shutting down")
}
