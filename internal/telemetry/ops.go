package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// OpsOptions configures an ops listener.
type OpsOptions struct {
	// Registry is scraped by /metrics (nil renders an empty exposition).
	Registry *Registry
	// Ready gates /readyz: nil means always ready; a non-nil error turns
	// /readyz into a 503 carrying the error text. Daemons fronting shard
	// backends wire this to "every backend healthy".
	Ready func() error
	// Statsz, when non-nil, is serialized to JSON by /statsz (the
	// RuntimeStats snapshot on exacmld); nil returns 404.
	Statsz func() any
}

// OpsServer is the ops HTTP listener: /metrics (Prometheus text),
// /healthz (process liveness), /readyz (backend readiness), /statsz
// (JSON stats snapshot) and net/http/pprof under /debug/pprof/.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOps binds the ops listener on addr (e.g. ":9090" or
// "127.0.0.1:0") and starts serving in the background.
func ServeOps(addr string, opts OpsOptions) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ops listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil {
			if err := opts.Ready(); err != nil {
				http.Error(w, fmt.Sprintf("not ready: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Statsz == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(opts.Statsz())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &OpsServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections.
func (s *OpsServer) Close() error { return s.srv.Close() }
