package dsms

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/stream"
)

func batchTestEngine(t *testing.T) (*Engine, Deployment) {
	t.Helper()
	e := NewEngine("batch")
	t.Cleanup(e.Close)
	schema := stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeDouble},
	)
	if err := e.CreateStream("s", schema); err != nil {
		t.Fatal(err)
	}
	dep, err := e.Deploy(NewQueryGraph("s", NewFilterBox(expr.MustParse("a >= 0"))))
	if err != nil {
		t.Fatal(err)
	}
	return e, dep
}

func TestIngestBatchOrderAndSeq(t *testing.T) {
	e, dep := batchTestEngine(t)
	sub, err := e.Subscribe(dep.Handle)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]stream.Tuple, 100)
	for i := range batch {
		batch[i] = stream.NewTuple(stream.DoubleValue(float64(i)))
	}
	if err := e.IngestBatch("s", batch); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	for i := 0; i < len(batch); i++ {
		tu := <-sub.C
		if tu.Values[0].Double() != float64(i) {
			t.Fatalf("tuple %d out of order: %v", i, tu.Values[0])
		}
		if tu.Seq != uint64(i+1) {
			t.Fatalf("tuple %d seq = %d, want %d", i, tu.Seq, i+1)
		}
	}
}

func TestIngestBatchAtomicValidation(t *testing.T) {
	e, dep := batchTestEngine(t)
	sub, err := e.Subscribe(dep.Handle)
	if err != nil {
		t.Fatal(err)
	}
	batch := []stream.Tuple{
		stream.NewTuple(stream.DoubleValue(1)),
		stream.NewTuple(stream.StringValue("bad")),
		stream.NewTuple(stream.DoubleValue(3)),
	}
	if err := e.IngestBatch("s", batch); err == nil {
		t.Fatal("batch with an invalid tuple must fail")
	}
	e.Flush()
	if len(sub.C) != 0 {
		t.Fatalf("failed batch leaked %d tuples", len(sub.C))
	}
	// Sequence numbering must be untouched by the failed batch.
	if err := e.Ingest("s", stream.NewTuple(stream.DoubleValue(9))); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if tu := <-sub.C; tu.Seq != 1 {
		t.Fatalf("first accepted tuple seq = %d, want 1", tu.Seq)
	}
}

func TestIngestBatchEmptyAndUnknown(t *testing.T) {
	e, _ := batchTestEngine(t)
	if err := e.IngestBatch("s", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := e.IngestBatch("missing", []stream.Tuple{stream.NewTuple(stream.DoubleValue(1))}); err == nil {
		t.Fatal("unknown stream must fail")
	}
}
