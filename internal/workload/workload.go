// Package workload generates the synthetic evaluation workloads of
// §4.2 / Table 3: sequences of continuous queries where each query
// exists in three forms — (1) a StreamSQL script for the direct-query
// baseline, (2) an XACML policy whose obligations encode exactly the
// same query graph, and (3) a matching XACML request (optionally with a
// user query embedded) that the PDP will always permit. Query graphs
// are composed from Filter (FB), Map (MB) and Aggregation (AB)
// operators following the paper's 7-way composition split, and request
// sequences are either unique or Zipf-distributed (α = 0.223, maxRank
// 300).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/stream"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// Composition is the operator combination of one query graph.
type Composition int

// The seven compositions of Table 3, in its order.
const (
	CompFB Composition = iota
	CompMB
	CompAB
	CompFBMB
	CompFBAB
	CompMBAB
	CompFBMBAB
)

// String names the composition as in Table 3.
func (c Composition) String() string {
	switch c {
	case CompFB:
		return "FB"
	case CompMB:
		return "MB"
	case CompAB:
		return "AB"
	case CompFBMB:
		return "FB+MB"
	case CompFBAB:
		return "FB+AB"
	case CompMBAB:
		return "MB+AB"
	case CompFBMBAB:
		return "FB+MB+AB"
	default:
		return "?"
	}
}

func (c Composition) hasFilter() bool {
	return c == CompFB || c == CompFBMB || c == CompFBAB || c == CompFBMBAB
}
func (c Composition) hasMap() bool {
	return c == CompMB || c == CompFBMB || c == CompMBAB || c == CompFBMBAB
}
func (c Composition) hasAgg() bool {
	return c == CompAB || c == CompFBAB || c == CompMBAB || c == CompFBMBAB
}

// Params are the Table 3 workload parameters.
type Params struct {
	// NDirectQueries is the number of direct queries (Table 3: 1500).
	NDirectQueries int
	// Dist is the query graph composition split (Table 3:
	// 160:170:130:124:254:290:372 for FB:MB:AB:FB+MB:FB+AB:MB+AB:FB+MB+AB).
	Dist [7]int
	// NPolicies is the number of unique policies (Table 3: 1000).
	NPolicies int
	// NRequests is the number of matching requests (Table 3: 1500).
	NRequests int
	// Alpha is the Zipf skew parameter (Table 3: 0.223).
	Alpha float64
	// MaxRank is the number of distinct requests in the Zipf sequence
	// (Table 3: 300).
	MaxRank int
	// UserQueryFraction of requests embed a compatible user query.
	UserQueryFraction float64
	// Seed drives all randomness deterministically.
	Seed int64
}

// TableThree returns the paper's exact parameters.
func TableThree() Params {
	return Params{
		NDirectQueries:    1500,
		Dist:              [7]int{160, 170, 130, 124, 254, 290, 372},
		NPolicies:         1000,
		NRequests:         1500,
		Alpha:             0.223,
		MaxRank:           300,
		UserQueryFraction: 0.5,
		Seed:              2012,
	}
}

// Scaled shrinks the Table 3 workload by an integer factor for quick
// runs, preserving the composition ratios.
func Scaled(factor int) Params {
	p := TableThree()
	if factor <= 1 {
		return p
	}
	p.NDirectQueries /= factor
	p.NPolicies /= factor
	p.NRequests /= factor
	p.MaxRank /= factor
	if p.MaxRank < 1 {
		p.MaxRank = 1
	}
	for i := range p.Dist {
		p.Dist[i] /= factor
		if p.Dist[i] < 1 {
			p.Dist[i] = 1
		}
	}
	return p
}

// Item is one continuous query in its three forms.
type Item struct {
	// Index identifies the item.
	Index int
	// Comp is the operator composition of the graph.
	Comp Composition
	// PolicyIndex is the index of the governing policy.
	PolicyIndex int
	// Subject, Resource identify the requesting principal and stream.
	Subject  string
	Resource string
	// Graph is the effective query graph (policy ∩ user query).
	Graph *dsms.QueryGraph
	// Script is the StreamSQL for the direct-query baseline.
	Script string
	// RequestXML is the XACML request document.
	RequestXML string
	// UserQueryXML is the embedded user query ("" for none).
	UserQueryXML string
}

// Workload is a generated §4.2 workload.
type Workload struct {
	Params Params
	// Schema is the stream schema shared by all streams.
	Schema *stream.Schema
	// Streams lists the stream names (one per policy).
	Streams []string
	// Policies are the unique policies, Policies[i] governing
	// Streams[i].
	Policies []*xacml.Policy
	// PolicyXML are the marshalled policy documents.
	PolicyXML []string
	// Items are the request/direct-query items.
	Items []Item
}

// Generate builds a deterministic workload from the parameters.
func Generate(p Params) (*Workload, error) {
	if p.NPolicies <= 0 || p.NRequests <= 0 {
		return nil, fmt.Errorf("workload: need positive policy and request counts")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &Workload{Params: p, Schema: weatherSchema()}

	comps := compositionSequence(p, rng)

	// One stream and one policy per policy index.
	for i := 0; i < p.NPolicies; i++ {
		streamName := fmt.Sprintf("stream%04d", i)
		w.Streams = append(w.Streams, streamName)
		comp := comps[i%len(comps)]
		graph, err := randomGraph(rng, w.Schema, streamName, comp)
		if err != nil {
			return nil, err
		}
		obs, err := xacmlplus.GraphToObligations(graph)
		if err != nil {
			return nil, err
		}
		pol := xacml.NewPermitPolicy(
			fmt.Sprintf("policy%04d", i),
			xacml.NewTarget("", streamName, "read"),
			obs...,
		)
		w.Policies = append(w.Policies, pol)
		xmlData, err := pol.Marshal()
		if err != nil {
			return nil, err
		}
		w.PolicyXML = append(w.PolicyXML, string(xmlData))
	}

	// Request items: item j uses policy j % NPolicies with a unique
	// subject, so every item is an independent grant.
	for j := 0; j < p.NRequests; j++ {
		pi := j % p.NPolicies
		streamName := w.Streams[pi]
		subject := fmt.Sprintf("user%04d", j)
		polGraph, err := xacmlplus.ObligationsToGraph(streamName, w.Policies[pi].Obligations.Obligations)
		if err != nil {
			return nil, err
		}
		item := Item{
			Index:       j,
			Comp:        comps[pi%len(comps)],
			PolicyIndex: pi,
			Subject:     subject,
			Resource:    streamName,
			Graph:       polGraph,
		}
		req := xacml.NewRequest(subject, streamName, "read")
		reqXML, err := req.Marshal()
		if err != nil {
			return nil, err
		}
		item.RequestXML = string(reqXML)

		if rng.Float64() < p.UserQueryFraction {
			// Embed a compatible user query: a relaxation of the policy
			// graph, guaranteed to verify OK and merge back to the
			// policy graph.
			uq, err := compatibleUserQuery(polGraph)
			if err != nil {
				return nil, err
			}
			if uq != nil {
				uqXML, err := uq.Marshal()
				if err != nil {
					return nil, err
				}
				item.UserQueryXML = string(uqXML)
			}
		}
		script, err := directScript(item.Graph, w.Schema)
		if err != nil {
			return nil, err
		}
		item.Script = script
		w.Items = append(w.Items, item)
	}
	return w, nil
}

// compositionSequence expands the Dist ratios into a shuffled sequence.
func compositionSequence(p Params, rng *rand.Rand) []Composition {
	var out []Composition
	for c, n := range p.Dist {
		for k := 0; k < n; k++ {
			out = append(out, Composition(c))
		}
	}
	if len(out) == 0 {
		out = []Composition{CompFBMBAB}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func weatherSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "samplingtime", Type: stream.TypeTimestamp},
		stream.Field{Name: "temperature", Type: stream.TypeDouble},
		stream.Field{Name: "humidity", Type: stream.TypeDouble},
		stream.Field{Name: "solarradiation", Type: stream.TypeDouble},
		stream.Field{Name: "rainrate", Type: stream.TypeDouble},
		stream.Field{Name: "windspeed", Type: stream.TypeDouble},
		stream.Field{Name: "winddirection", Type: stream.TypeInt},
		stream.Field{Name: "barometer", Type: stream.TypeDouble},
	)
}

// numericAttrs are the attributes used in random filters/aggregations.
var numericAttrs = []string{"temperature", "humidity", "solarradiation", "rainrate", "windspeed", "barometer"}

// randomGraph builds a random but valid query graph with the given
// composition, parameter names consistent with the stream schema.
func randomGraph(rng *rand.Rand, schema *stream.Schema, streamName string, comp Composition) (*dsms.QueryGraph, error) {
	g := dsms.NewQueryGraph(streamName)
	// Choose the attribute pool for map/agg up front so the chain
	// validates: map must retain whatever the aggregation needs.
	nAttrs := 1 + rng.Intn(3)
	perm := rng.Perm(len(numericAttrs))
	attrs := make([]string, 0, nAttrs)
	for _, idx := range perm[:nAttrs] {
		attrs = append(attrs, numericAttrs[idx])
	}

	if comp.hasFilter() {
		attr := numericAttrs[rng.Intn(len(numericAttrs))]
		ops := []expr.Op{expr.OpGT, expr.OpGE, expr.OpLT, expr.OpLE}
		cond := &expr.Simple{
			Attr:  attr,
			Op:    ops[rng.Intn(len(ops))],
			Value: stream.DoubleValue(math.Round(rng.Float64()*1000) / 10),
		}
		g.Boxes = append(g.Boxes, dsms.NewFilterBox(cond))
	}
	if comp.hasMap() {
		g.Boxes = append(g.Boxes, dsms.NewMapBox(attrs...))
	}
	if comp.hasAgg() {
		size := int64(2 + rng.Intn(19))
		step := int64(1 + rng.Intn(int(size)))
		funcs := []dsms.AggFunc{dsms.AggAvg, dsms.AggMax, dsms.AggMin, dsms.AggSum, dsms.AggCount, dsms.AggFirstVal, dsms.AggLastVal}
		aggs := make([]dsms.AggSpec, 0, len(attrs))
		for _, a := range attrs {
			aggs = append(aggs, dsms.AggSpec{Attr: a, Func: funcs[rng.Intn(len(funcs))]})
		}
		g.Boxes = append(g.Boxes, dsms.NewAggregateBox(
			dsms.WindowSpec{Type: dsms.WindowTuple, Size: size, Step: step}, aggs...))
	}
	if _, err := g.Validate(schema); err != nil {
		return nil, fmt.Errorf("workload: generated invalid graph: %w", err)
	}
	return g, nil
}

// compatibleUserQuery derives a user query that is guaranteed OK
// against the policy graph: identical map/aggregation, and a filter
// that is at least as restrictive.
func compatibleUserQuery(policy *dsms.QueryGraph) (*xacmlplus.UserQuery, error) {
	refined := policy.Clone()
	if f := refined.Filter(); f != nil {
		// Tighten the threshold so user ⊆ policy (always OK).
		if s, ok := f.Condition.(*expr.Simple); ok {
			v, _ := s.Value.AsFloat()
			switch s.Op {
			case expr.OpGT, expr.OpGE:
				s.Value = stream.DoubleValue(v + 1)
			case expr.OpLT, expr.OpLE:
				s.Value = stream.DoubleValue(v - 1)
			}
		}
	}
	return xacmlplus.FromGraph(refined)
}

// directScript renders the item's graph as the StreamSQL script the
// direct-query baseline sends to the engine.
func directScript(g *dsms.QueryGraph, schema *stream.Schema) (string, error) {
	// The baseline, like the PEP, embeds the input declaration.
	return generateScript(g, schema)
}
