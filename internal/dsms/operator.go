package dsms

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/stream"
)

// operator is a runtime instance of a Box bound to a concrete input
// schema. Operators are single-goroutine state machines: the engine
// guarantees processBatch is never called concurrently for one
// operator.
type operator interface {
	// processBatch consumes a batch of input tuples and returns the
	// output batch. The returned slice may alias in (filter compacts in
	// place) or operator-owned scratch storage, and is only valid until
	// the next processBatch call on the same operator. retain signals
	// that the outputs escape the pipeline (a subscriber or an offline
	// caller holds them beyond the batch): operators that hand out
	// reusable value storage must then allocate fresh storage instead.
	processBatch(in []stream.Tuple, retain bool) ([]stream.Tuple, error)
	// outSchema is the operator's output schema.
	outSchema() *stream.Schema
}

// newOperator instantiates the runtime for a box.
func newOperator(b *Box, in *stream.Schema) (operator, error) {
	out, err := b.OutputSchema(in)
	if err != nil {
		return nil, err
	}
	switch b.Kind {
	case BoxFilter:
		f := &filterOp{schema: in}
		if b.Condition != nil {
			bound, err := expr.Bind(b.Condition, in)
			if err != nil {
				return nil, fmt.Errorf("dsms: filter: %w", err)
			}
			f.bound = bound
			f.cond = b.Condition
		}
		return f, nil
	case BoxMap:
		poss := make([]int, len(b.Attrs))
		for i, attr := range b.Attrs {
			pos, _, ok := in.Lookup(attr)
			if !ok {
				return nil, fmt.Errorf("dsms: map references unknown attribute %q", attr)
			}
			poss[i] = pos
		}
		return &mapOp{poss: poss, out: out}, nil
	case BoxAggregate:
		return newAggregateOp(b, in, out)
	default:
		return nil, fmt.Errorf("dsms: invalid box kind")
	}
}

// pipeline is the compiled operator chain for one deployed query plus
// the reusable batch buffer that lets whole mailbox batches flow
// through the chain without per-tuple slice allocations.
type pipeline struct {
	ops []operator
	// escapes[i] reports whether op i's output tuples reach the
	// pipeline consumer without passing a downstream aggregate.
	// Aggregates copy the attribute values they buffer, so they are a
	// retention barrier: anything before one may reuse value arenas
	// freely even when the final outputs are retained.
	escapes []bool
	// copyIn is set when the first in-place operator (filter) runs
	// directly on the incoming batch, which is shared between all
	// queries on the stream and therefore must not be mutated.
	copyIn bool
	buf    []stream.Tuple
	// isAgg[i] marks op i as a window aggregate, whose emissions feed
	// the window-emit counter when tel is live. tel points at the owning
	// engine's telemetry slot (nil for offline pipelines), so enabling
	// telemetry on a running engine reaches already-deployed queries.
	isAgg []bool
	tel   *atomic.Pointer[engineTelemetry]

	// Columnar program (the live-engine hot path). The chain up to and
	// including the first aggregate runs directly on the shared sealed
	// ColBatch: filters narrow a private selection vector with compiled
	// typed kernels, maps are folded away entirely at build time into
	// the cumulative column mapping, and the aggregate bulk-ingests ring
	// entries straight from the columns. Operators after the first
	// aggregate (rare) run row-wise on its emissions via runOps.
	colSteps []colStep
	// outIdx maps final output positions to physical batch columns when
	// no aggregate terminates the columnar section.
	outIdx []int
	// postAggAt is the op index right after the first aggregate; -1
	// when the chain has none.
	postAggAt int
	// colOK gates the columnar path; false falls back to materializing
	// rows and running the row program (never expected in practice —
	// every box kind compiles).
	colOK bool

	sel      []int32        // reused selection vector
	colHdrs  []stream.Tuple // reused materialized output headers
	colArena []stream.Value // reused value arena for unretained outputs

	// stage, when set, runs after the operator chain on every batch
	// (including batches the chain filtered to nothing) and replaces the
	// chain's output with stage records. It receives the batch's
	// pre-chain sequence frontier, so the shard's position watermark
	// advances even when a filter drops the frontier tuple.
	stage stageOp
}

// colStep is one step of the columnar program: either a compiled
// filter (pred != nil) with the column mapping in effect at its point
// of the chain, or the terminal aggregate with its spec columns.
type colStep struct {
	pred   *expr.ColPred
	colIdx []int

	agg     *aggregateOp
	aggCols []int
}

// buildPipeline instantiates the whole chain for a graph. For a staged
// graph the chain runs in stage form: a partial stage peels off the
// terminal aggregate box and runs it as a partial-aggregate stage
// operator, a relay stage appends a row-relay stage operator, and the
// pipeline's output schema becomes the stage record schema.
func buildPipeline(g *QueryGraph, in *stream.Schema) (*pipeline, *stream.Schema, error) {
	boxes := g.Boxes
	var partialBox *Box
	if g.Stage != nil && g.Stage.Mode == StagePartial {
		n := len(boxes)
		if n == 0 || boxes[n-1].Kind != BoxAggregate {
			return nil, nil, fmt.Errorf("dsms: partial stage requires a terminal aggregate box")
		}
		partialBox = boxes[n-1]
		boxes = boxes[:n-1]
	}
	p := &pipeline{
		ops:     make([]operator, 0, len(boxes)),
		escapes: make([]bool, len(boxes)),
	}
	cur := in
	for _, b := range boxes {
		op, err := newOperator(b, cur)
		if err != nil {
			return nil, nil, err
		}
		p.ops = append(p.ops, op)
		cur = op.outSchema()
	}
	if g.Stage != nil {
		var st stageOp
		var err error
		switch g.Stage.Mode {
		case StagePartial:
			st, err = newPartialAggOp(partialBox, cur)
		case StageRelay:
			st, err = newRelayOp(cur)
		default:
			err = fmt.Errorf("dsms: unknown stage mode %q", g.Stage.Mode)
		}
		if err != nil {
			return nil, nil, err
		}
		p.stage = st
		cur = st.outSchema()
	}
	hasAgg := false
	p.isAgg = make([]bool, len(p.ops))
	for i := len(p.ops) - 1; i >= 0; i-- {
		p.escapes[i] = !hasAgg
		if _, ok := p.ops[i].(*aggregateOp); ok {
			hasAgg = true
			p.isAgg[i] = true
		}
	}
	// The shared input batch stays aliased through every leading filter
	// (a filter's output IS its input, compacted or passed through), so
	// the batch needs a private copy iff any filter with a real
	// predicate runs before the first map/aggregate — those write into
	// operator-owned scratch and end the aliasing. (Row path only; the
	// columnar path never mutates the shared batch.)
	for _, op := range p.ops {
		f, ok := op.(*filterOp)
		if !ok {
			break
		}
		if f.bound != nil {
			p.copyIn = true
			break
		}
	}
	if err := p.buildColProgram(in); err != nil {
		return nil, nil, err
	}
	return p, cur, nil
}

// buildColProgram compiles the columnar form of the chain. Maps cost
// nothing at runtime: they only compose the logical→physical column
// mapping carried into downstream filters and the aggregate.
func (p *pipeline) buildColProgram(in *stream.Schema) error {
	cur := make([]int, in.Len())
	for i := range cur {
		cur[i] = i
	}
	p.postAggAt = -1
	for i, op := range p.ops {
		switch o := op.(type) {
		case *filterOp:
			if o.bound == nil {
				continue // no condition: pure passthrough
			}
			cp, err := expr.BindCols(o.cond, o.schema)
			if err != nil {
				// Bind succeeded at newOperator time, so this is
				// unreachable; the row fallback keeps the query correct
				// regardless.
				return nil
			}
			p.colSteps = append(p.colSteps, colStep{pred: cp, colIdx: cur})
		case *mapOp:
			nxt := make([]int, len(o.poss))
			for j, pos := range o.poss {
				nxt[j] = cur[pos]
			}
			cur = nxt
		case *aggregateOp:
			ac := make([]int, len(o.poss))
			for j, pos := range o.poss {
				ac[j] = cur[pos]
			}
			p.colSteps = append(p.colSteps, colStep{agg: o, aggCols: ac})
			p.postAggAt = i + 1
			p.colOK = true
			return nil
		default:
			return nil // unknown operator kind: row fallback
		}
	}
	p.outIdx = cur
	p.colOK = true
	return nil
}

// processBatch pushes a whole batch through the chain using the
// pipeline's reused buffers. The returned slice is valid until the
// next call; callers that keep tuples longer must pass retain (value
// storage is then not recycled) and copy the slice header themselves.
// Staged pipelines return stage records instead (freshly allocated —
// they always escape to the merge stage), and run the stage even when
// the chain output is empty, so watermarks advance past filtered-out
// batches.
func (p *pipeline) processBatch(batch []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	if p.stage == nil {
		return p.processRows(batch, retain)
	}
	var hiG uint64
	for i := range batch {
		if batch[i].Seq > hiG {
			hiG = batch[i].Seq
		}
	}
	rows, err := p.processRows(batch, false)
	if err != nil {
		return nil, err
	}
	return p.stage.process(rows, hiG)
}

// processRows is the plain row chain (stage excluded).
func (p *pipeline) processRows(batch []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	cur := batch
	if p.copyIn {
		p.buf = append(p.buf[:0], batch...)
		cur = p.buf
	}
	return p.runOps(0, cur, retain)
}

// runOps drives the row-operator chain from op index from. Shared by
// the row path (from 0) and the columnar path (operators after the
// first aggregate).
func (p *pipeline) runOps(from int, cur []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	for i := from; i < len(p.ops); i++ {
		out, err := p.ops[i].processBatch(cur, retain && p.escapes[i])
		if err != nil {
			return nil, err
		}
		if p.isAgg[i] && len(out) > 0 && p.tel != nil {
			if tel := p.tel.Load(); tel != nil {
				tel.windowEmits.Add(uint64(len(out)))
			}
		}
		if len(out) == 0 {
			return nil, nil
		}
		cur = out
	}
	return cur, nil
}

// processCols pushes one sealed columnar batch through the compiled
// columnar program. The batch is shared across queries and never
// mutated: filters narrow a private selection vector, the mapping of
// logical to physical columns was composed at build time, and only the
// terminal boundary materializes rows — and only when needRows is set
// (a subscriber or post-aggregate operator actually consumes them).
// The returned count is the number of output tuples regardless of
// materialization, for the engine's output accounting. Returned rows
// follow the processBatch validity contract; when needRows is set,
// value storage is freshly allocated (subscribers retain pushed
// tuples beyond the batch). Staged pipelines always materialize (the
// stage consumes rows) and return stage records.
func (p *pipeline) processCols(cb *stream.ColBatch, needRows bool) ([]stream.Tuple, int, error) {
	if p.stage == nil {
		return p.processColsCore(cb, needRows)
	}
	var hiG uint64
	for _, s := range cb.Seq {
		if s > hiG {
			hiG = s
		}
	}
	rows, _, err := p.processColsCore(cb, true)
	if err != nil {
		return nil, 0, err
	}
	out, err := p.stage.process(rows, hiG)
	return out, len(out), err
}

// processColsCore is the stage-free columnar program.
func (p *pipeline) processColsCore(cb *stream.ColBatch, needRows bool) ([]stream.Tuple, int, error) {
	if !p.colOK {
		outs, err := p.processColsFallback(cb, needRows)
		return outs, len(outs), err
	}
	n := cb.Len()
	if cap(p.sel) < n {
		p.sel = make([]int32, n)
	}
	sel := p.sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	for si := range p.colSteps {
		st := &p.colSteps[si]
		if st.pred != nil {
			var err error
			sel, err = st.pred.Filter(cb, st.colIdx, sel)
			if err != nil {
				return nil, 0, err
			}
			if len(sel) == 0 {
				return nil, 0, nil
			}
			continue
		}
		// Terminal aggregate: bulk-ingest the selected rows, then run
		// whatever follows it row-wise on the emissions.
		out, err := st.agg.processCols(cb, st.aggCols, sel)
		if err != nil {
			return nil, 0, err
		}
		if len(out) > 0 && p.tel != nil {
			if tel := p.tel.Load(); tel != nil {
				tel.windowEmits.Add(uint64(len(out)))
			}
		}
		if len(out) == 0 {
			return nil, 0, nil
		}
		outs, err := p.runOps(p.postAggAt, out, needRows)
		return outs, len(outs), err
	}
	if !needRows {
		return nil, len(sel), nil
	}
	arena := make([]stream.Value, 0, len(sel)*len(p.outIdx))
	if cap(p.colHdrs) < len(sel) {
		p.colHdrs = make([]stream.Tuple, 0, len(sel))
	}
	hdrs, _ := cb.MaterializeRows(p.outIdx, sel, p.colHdrs[:0], arena)
	p.colHdrs = hdrs
	return hdrs, len(hdrs), nil
}

// processColsFallback materializes the whole batch and runs the row
// program — the safety net for chains the columnar compiler does not
// cover.
func (p *pipeline) processColsFallback(cb *stream.ColBatch, retain bool) ([]stream.Tuple, error) {
	n := cb.Len()
	nc := len(cb.Cols)
	if cap(p.sel) < n {
		p.sel = make([]int32, n)
	}
	sel := p.sel[:n]
	idx := make([]int, nc)
	for i := range sel {
		sel[i] = int32(i)
	}
	for i := range idx {
		idx[i] = i
	}
	arena := p.colArena[:0]
	if retain || cap(arena) < n*nc {
		arena = make([]stream.Value, 0, n*nc)
	}
	if cap(p.colHdrs) < n {
		p.colHdrs = make([]stream.Tuple, 0, n)
	}
	hdrs, arena := cb.MaterializeRows(idx, sel, p.colHdrs[:0], arena)
	p.colHdrs = hdrs
	if !retain {
		p.colArena = arena
	}
	return p.processRows(hdrs, retain)
}

// filterOp drops tuples that do not satisfy the condition, compacting
// the batch in place: zero allocations on the hot path. The condition
// is compiled against the input schema at build time (expr.Bind) so
// evaluation does no per-tuple attribute-name lookups; a nil bound
// means no condition — the batch passes through untouched.
type filterOp struct {
	bound  *expr.Bound
	cond   expr.Node // source AST, recompiled columnar by buildColProgram
	schema *stream.Schema
}

func (f *filterOp) processBatch(in []stream.Tuple, _ bool) ([]stream.Tuple, error) {
	if f.bound == nil {
		return in, nil
	}
	out := in[:0]
	for _, t := range in {
		ok, err := f.bound.Eval(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

func (f *filterOp) outSchema() *stream.Schema { return f.schema }

// mapOp projects tuples onto a subset of attributes. Attribute
// positions are resolved once at build time; per batch the projected
// value slices are carved out of one contiguous arena, so the steady
// state allocates nothing.
type mapOp struct {
	poss  []int
	out   *stream.Schema
	hdrs  []stream.Tuple
	arena []stream.Value
}

func (m *mapOp) processBatch(in []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	need := len(in) * len(m.poss)
	arena := m.arena
	if retain || cap(arena) < need {
		// Retained outputs keep pointing into the arena, so hand this
		// one over and start fresh next call.
		arena = make([]stream.Value, 0, need)
	} else {
		arena = arena[:0]
	}
	if cap(m.hdrs) < len(in) {
		m.hdrs = make([]stream.Tuple, 0, len(in))
	}
	out := m.hdrs[:0]
	for _, t := range in {
		base := len(arena)
		for _, p := range m.poss {
			arena = append(arena, t.Values[p])
		}
		out = append(out, stream.Tuple{
			Values:        arena[base:len(arena):len(arena)],
			ArrivalMillis: t.ArrivalMillis,
			Seq:           t.Seq,
		})
	}
	m.hdrs = out
	if !retain {
		m.arena = arena
	}
	return out, nil
}

func (m *mapOp) outSchema() *stream.Schema { return m.out }
