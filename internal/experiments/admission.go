package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/source"
	"repro/internal/stream"
)

// AdmissionStreamSpec describes one competing stream in the admission
// scenario: its priority class, optional quota, how many tuples its
// publishers offer and at what pace.
type AdmissionStreamSpec struct {
	// Name is the stream name (all specs share one runtime).
	Name string
	// Class is the stream's priority class.
	Class runtime.Class
	// Rate/Burst is the stream's token-bucket quota (0 = unlimited).
	Rate  float64
	Burst int
	// Publishers is the number of concurrent publisher goroutines
	// (default 1).
	Publishers int
	// Tuples is the total number of tuples offered across publishers.
	Tuples int
	// OfferRate paces each publisher to roughly this many tuples/second
	// (0 = publish flat out, saturating the runtime).
	OfferRate float64
}

// AdmissionOptions parameterises the admission-control scenario:
// several streams of different priority classes co-located on the same
// shard(s), publishing concurrently under a class-aware shedding
// policy.
type AdmissionOptions struct {
	// Shards is the engine shard count (default 1 so every stream
	// contends for the same queue).
	Shards int
	// QueueSize is the per-shard queue capacity (default 256, small
	// enough that a saturating publisher forces shedding).
	QueueSize int
	// BatchSize is the drain batch size (default 64).
	BatchSize int
	// Policy is the backpressure policy (default DropNewest, which is
	// class-aware: higher classes evict queued lower-class tuples).
	Policy runtime.Policy
	// BlockClass is the Block policy's class threshold.
	BlockClass runtime.Class
	// BatchPublish is the publish batch size (default 64).
	BatchPublish int
	// Streams are the competing streams (default: a paced Critical
	// stream vs a saturating BestEffort stream).
	Streams []AdmissionStreamSpec
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.BatchPublish <= 0 {
		o.BatchPublish = 64
	}
	if len(o.Streams) == 0 {
		o.Streams = []AdmissionStreamSpec{
			{Name: "critical", Class: runtime.Critical, Publishers: 1, Tuples: 20000, OfferRate: 40000},
			{Name: "besteffort", Class: runtime.BestEffort, Publishers: 4, Tuples: 200000},
		}
	}
	for i := range o.Streams {
		if o.Streams[i].Publishers <= 0 {
			o.Streams[i].Publishers = 1
		}
		// Tuples is taken as given: a caller-provided spec with
		// Tuples <= 0 registers its stream but offers nothing, so
		// aggressive scaling rounds down to zero load instead of
		// silently exploding to a default.
		if o.Streams[i].Tuples < 0 {
			o.Streams[i].Tuples = 0
		}
	}
	return o
}

// AdmissionResult reports one admission scenario run.
type AdmissionResult struct {
	Opts    AdmissionOptions
	Stats   metrics.RuntimeStats
	Elapsed time.Duration
}

// Sustained returns the fraction of a stream's offered tuples that were
// ingested (0 when the stream offered nothing).
func (r AdmissionResult) Sustained(streamName string) float64 {
	for _, st := range r.Stats.Streams {
		if st.Stream == streamName && st.Offered > 0 {
			return float64(st.Ingested) / float64(st.Offered)
		}
	}
	return 0
}

// String renders a per-stream summary plus the class rollup.
func (r AdmissionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "admission: %d shard(s), queue %d, policy %s, %v elapsed\n",
		r.Opts.Shards, r.Opts.QueueSize, r.Opts.Policy, r.Elapsed.Round(time.Millisecond))
	for _, st := range r.Stats.Streams {
		sustained := 0.0
		if st.Offered > 0 {
			sustained = 100 * float64(st.Ingested) / float64(st.Offered)
		}
		fmt.Fprintf(&b, "  %-12s %-11s offered=%-8d ingested=%-8d shed=%-8d dropped=%-8d sustained=%.1f%%\n",
			st.Stream, st.Class, st.Offered, st.Ingested, st.Shed, st.Dropped, sustained)
	}
	return b.String()
}

// RunAdmission stands up a runtime whose streams carry different
// priority classes and quotas, drives them with concurrent publishers
// (saturating for the low classes, paced for the high ones) and reports
// the per-stream and per-class admission accounting. With the default
// scenario a Critical stream shares its only shard with a flooding
// BestEffort stream; class-aware shedding keeps the Critical stream's
// sustained throughput near 100% while the BestEffort stream is shed.
func RunAdmission(o AdmissionOptions) (AdmissionResult, error) {
	o = o.withDefaults()
	rt := runtime.New("admission", runtime.Options{
		Shards:     o.Shards,
		QueueSize:  o.QueueSize,
		BatchSize:  o.BatchSize,
		Policy:     o.Policy,
		BlockClass: o.BlockClass,
	})
	defer rt.Close()

	schema := source.WeatherSchema()
	for _, spec := range o.Streams {
		opts := []runtime.StreamOption{runtime.WithClass(spec.Class)}
		if spec.Rate > 0 {
			opts = append(opts, runtime.WithQuota(spec.Rate, spec.Burst))
		}
		if err := rt.CreateStream(spec.Name, schema, opts...); err != nil {
			return AdmissionResult{}, err
		}
		// One continuous query per stream so draining pays realistic
		// per-tuple work.
		g := dsms.NewQueryGraph(spec.Name, dsms.NewFilterBox(expr.MustParse("rainrate > 5")))
		if _, err := rt.Deploy(g); err != nil {
			return AdmissionResult{}, err
		}
	}

	// Pre-generate the tuple pool outside the timed section.
	ws := source.NewWeatherStation(0, 1000, 7)
	pool := make([]stream.Tuple, 2048)
	for i := range pool {
		pool[i] = ws.Next()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for _, spec := range o.Streams {
		// Pace per publisher so the stream's aggregate offer rate is
		// roughly spec.OfferRate.
		var pause time.Duration
		if spec.OfferRate > 0 {
			pause = time.Duration(float64(o.BatchPublish*spec.Publishers) / spec.OfferRate * float64(time.Second))
		}
		for p := 0; p < spec.Publishers; p++ {
			perPub := spec.Tuples / spec.Publishers
			if p < spec.Tuples%spec.Publishers {
				perPub++
			}
			wg.Add(1)
			go func(spec AdmissionStreamSpec, p, perPub int, pause time.Duration) {
				defer wg.Done()
				batch := make([]stream.Tuple, 0, o.BatchPublish)
				for i := 0; i < perPub; i++ {
					batch = append(batch, pool[(p*perPub+i)%len(pool)])
					if len(batch) == o.BatchPublish {
						_, _ = rt.PublishBatch(spec.Name, batch)
						batch = batch[:0]
						if pause > 0 {
							time.Sleep(pause)
						}
					}
				}
				if len(batch) > 0 {
					_, _ = rt.PublishBatch(spec.Name, batch)
				}
			}(spec, p, perPub, pause)
		}
	}
	wg.Wait()
	rt.Flush()
	elapsed := time.Since(start)

	return AdmissionResult{Opts: o, Stats: rt.Stats(), Elapsed: elapsed}, nil
}
