package experiments

import (
	"strings"
	"testing"

	"repro/internal/runtime"
)

// TestRunRemoteShards runs a small mixed local/remote topology
// end-to-end and checks that both backend kinds ingest their share
// with exact accounting (RunRemoteShards itself verifies the
// offered == ingested + dropped + errors invariant and fails on any
// violation).
func TestRunRemoteShards(t *testing.T) {
	res, err := RunRemoteShards(RemoteShardsOptions{
		LocalShards:  1,
		RemoteShards: 2,
		Publishers:   3,
		BatchSize:    32,
		Tuples:       3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Stats.Total()
	if total.Ingested != 3000 {
		t.Errorf("ingested = %d, want 3000 (blocking policy loses nothing)", total.Ingested)
	}
	if res.LocalIngested == 0 || res.RemoteIngested == 0 {
		t.Errorf("ingest split local=%d remote=%d; want both backend kinds exercised",
			res.LocalIngested, res.RemoteIngested)
	}
	if len(res.Stats.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(res.Stats.Shards))
	}
	remotes := 0
	for _, sh := range res.Stats.Shards {
		if strings.HasPrefix(sh.Backend, "remote(") {
			remotes++
		}
		if !sh.Healthy {
			t.Errorf("shard %d (%s) unhealthy", sh.Shard, sh.Backend)
		}
	}
	if remotes != 2 {
		t.Errorf("remote shards = %d, want 2", remotes)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %f", res.Throughput)
	}
	if s := res.String(); !strings.Contains(s, "ingested") {
		t.Errorf("summary = %q", s)
	}
}

// TestRunRemoteShardsAllLocal pins the remote count to zero: the
// explicit all-local topology used as the benchmark baseline.
func TestRunRemoteShardsAllLocal(t *testing.T) {
	res, err := RunRemoteShards(RemoteShardsOptions{
		LocalShards:  2,
		RemoteShards: 0,
		Tuples:       1000,
		Policy:       runtime.Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteIngested != 0 || res.LocalIngested != 1000 {
		t.Errorf("ingest split local=%d remote=%d; want 1000/0", res.LocalIngested, res.RemoteIngested)
	}
}
