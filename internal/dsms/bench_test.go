package dsms

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/expr"
	"repro/internal/stream"
)

func benchSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeDouble},
		stream.Field{Name: "t", Type: stream.TypeTimestamp},
	)
}

func benchTuples(n int) []stream.Tuple {
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(
			stream.DoubleValue(float64(i%1000)),
			stream.TimestampMillis(int64(i)*10),
		)
		tuples[i].ArrivalMillis = int64(i) * 10
		tuples[i].Seq = uint64(i + 1)
	}
	return tuples
}

func filterMapPipeline(b *testing.B) *pipeline {
	b.Helper()
	g := NewQueryGraph("s",
		NewFilterBox(expr.MustParse("a > 500")),
		NewMapBox("a"),
	)
	p, _, err := buildPipeline(g, benchSchema())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPipelineBatch measures the raw operator chain (filter+map)
// on whole batches, bypassing ingest: run with -benchmem — steady
// state must show 0 allocs/op (asserted by
// TestPipelineSteadyStateZeroAllocs).
func BenchmarkPipelineBatch(b *testing.B) {
	for _, batch := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := filterMapPipeline(b)
			tuples := benchTuples(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.processBatch(tuples, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPipelineSteadyStateZeroAllocs pins the tentpole guarantee: after
// warm-up, pushing a batch through filter+map allocates nothing.
func TestPipelineSteadyStateZeroAllocs(t *testing.T) {
	p := func() *pipeline {
		g := NewQueryGraph("s",
			NewFilterBox(expr.MustParse("a > 500")),
			NewMapBox("a"),
		)
		pp, _, err := buildPipeline(g, benchSchema())
		if err != nil {
			t.Fatal(err)
		}
		return pp
	}()
	tuples := benchTuples(512)
	// Warm up the reusable buffers.
	for i := 0; i < 4; i++ {
		if _, err := p.processBatch(tuples, false); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.processBatch(tuples, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("filter+map steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// benchColBatch transposes tuples into a sealed columnar batch the way
// the engine's seal path would.
func benchColBatch(tb testing.TB, tuples []stream.Tuple) *stream.ColBatch {
	tb.Helper()
	cb := stream.NewColBatch(benchSchema())
	if err := cb.LoadTuples(tuples, true); err != nil {
		tb.Fatal(err)
	}
	for i := range tuples {
		cb.Seq[i] = tuples[i].Seq
	}
	return cb
}

// BenchmarkPipelineBatchColumnar is BenchmarkPipelineBatch on the
// columnar path: compiled filter kernels narrowing a selection vector,
// map folded into the static column mapping, no row materialization
// (needRows=false, as when a query has no subscribers).
func BenchmarkPipelineBatchColumnar(b *testing.B) {
	for _, batch := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := filterMapPipeline(b)
			cb := benchColBatch(b, benchTuples(batch))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.processCols(cb, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestColPipelineSteadyStateZeroAllocs pins the columnar tentpole
// guarantee: filter+map over a sealed batch — kernel filter, selection
// vector, static column remap — allocates nothing in steady state.
func TestColPipelineSteadyStateZeroAllocs(t *testing.T) {
	g := NewQueryGraph("s",
		NewFilterBox(expr.MustParse("a > 500")),
		NewMapBox("a"),
	)
	p, _, err := buildPipeline(g, benchSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !p.colOK {
		t.Fatal("filter+map must compile to the columnar program")
	}
	cb := benchColBatch(t, benchTuples(512))
	for i := 0; i < 4; i++ {
		if _, _, err := p.processCols(cb, false); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := p.processCols(cb, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("columnar filter+map steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkWindowSlide measures the sliding-window aggregate with
// step ≪ size — the case where the old slice-buffer implementation
// re-allocated size-step tuples per emission (tuple windows) or
// re-filtered the whole buffer per close (time windows).
func BenchmarkWindowSlide(b *testing.B) {
	cases := []struct {
		name string
		win  WindowSpec
	}{
		{"tuple/size=512/step=1", WindowSpec{Type: WindowTuple, Size: 512, Step: 1}},
		{"tuple/size=64/step=4", WindowSpec{Type: WindowTuple, Size: 64, Step: 4}},
		{"time/size=5120/step=10", WindowSpec{Type: WindowTime, Size: 5120, Step: 10}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			box := NewAggregateBox(c.win,
				AggSpec{Attr: "a", Func: AggAvg},
				AggSpec{Attr: "a", Func: AggMax},
				AggSpec{Attr: "t", Func: AggLastVal},
			)
			op, err := newOperator(box, benchSchema())
			if err != nil {
				b.Fatal(err)
			}
			// One reused batch whose arrivals are re-stamped to keep
			// advancing: time windows must stay on the sorted fast path
			// (a wrapping clock would degrade to the unsorted fallback
			// and benchmark the wrong code).
			tuples := benchTuples(512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := int64(i) * 512 * 10
				for j := range tuples {
					tuples[j].ArrivalMillis = base + int64(j+1)*10
				}
				if _, err := op.processBatch(tuples, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSealContention demonstrates the per-stream seal win:
// parallel publishers hammering distinct streams contend on nothing
// but their own stream's sequence lock. Compare streams=1 (all
// publishers serialize on one seal) with streams=4/8 on a multi-core
// run.
func BenchmarkEngineSealContention(b *testing.B) {
	for _, streams := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			eng := NewEngine("contention")
			defer eng.Close()
			names := make([]string, streams)
			for i := range names {
				names[i] = fmt.Sprintf("s%d", i)
				if err := eng.CreateStream(names[i], benchSchema()); err != nil {
					b.Fatal(err)
				}
				g := NewQueryGraph(names[i], NewFilterBox(expr.MustParse("a > 500")))
				if _, err := eng.Deploy(g); err != nil {
					b.Fatal(err)
				}
			}
			src := benchTuples(1024)
			var next atomic.Int64
			const batch = 64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				name := names[int(next.Add(1)-1)%streams]
				i := 0
				for pb.Next() {
					buf := make([]stream.Tuple, 0, batch)
					for len(buf) < batch {
						t := src[i%len(src)]
						t.Seq, t.ArrivalMillis = 0, 0
						buf = append(buf, t)
						i++
					}
					if err := eng.IngestBatchOwned(name, buf); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			eng.Flush()
		})
	}
}

// BenchmarkIngestBatchOwned is the engine's zero-copy batch path in
// isolation (one stream, one filter query), across batch sizes.
func BenchmarkIngestBatchOwned(b *testing.B) {
	for _, batch := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			eng := NewEngine("owned")
			defer eng.Close()
			if err := eng.CreateStream("s", benchSchema()); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Deploy(NewQueryGraph("s", NewFilterBox(expr.MustParse("a > 500")))); err != nil {
				b.Fatal(err)
			}
			src := benchTuples(1024)
			b.ReportAllocs()
			b.ResetTimer()
			i := 0
			for n := 0; n < b.N; n += batch {
				buf := make([]stream.Tuple, 0, batch)
				for len(buf) < batch {
					t := src[i%len(src)]
					t.Seq, t.ArrivalMillis = 0, 0
					buf = append(buf, t)
					i++
				}
				if err := eng.IngestBatchOwned("s", buf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			eng.Flush()
		})
	}
}
