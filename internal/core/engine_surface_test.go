package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/stream"
)

// TestEngineSurfaceSeesAllShards guards the fix for the shard-0-only
// Engine field: the framework's engine surface must resolve schemas
// and deploy scripts for streams on every shard, not just shard 0.
func TestEngineSurfaceSeesAllShards(t *testing.T) {
	f := NewWithOptions("multi", Options{Shards: 4})
	t.Cleanup(f.Close)

	schema := stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeDouble},
	)
	// Register one stream per shard (names chosen by placement hash),
	// guaranteeing at least three streams shard 0's engine never sees.
	names := make([]string, f.Runtime.NumShards())
	covered := 0
	for i := 0; covered < len(names); i++ {
		name := fmt.Sprintf("s%d", i)
		if si := f.Runtime.ShardForStream(name); names[si] == "" {
			names[si] = name
			covered++
			if err := f.RegisterStream(name, schema); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, name := range names {
		got, err := f.Engine.StreamSchema(name)
		if err != nil {
			t.Fatalf("StreamSchema(%q) through the engine surface: %v", name, err)
		}
		if !got.Equal(schema) {
			t.Errorf("schema for %q = %v", name, got)
		}
	}
	if got := f.Engine.Streams(); len(got) != len(names) {
		t.Errorf("Streams() = %v, want all %d registered streams", got, len(names))
	}

	// Deploy and withdraw through the surface on every shard.
	handles := make([]string, 0, len(names))
	for _, name := range names {
		script := fmt.Sprintf(
			"CREATE INPUT STREAM %s (a double); CREATE OUTPUT STREAM o; SELECT * FROM %s WHERE a > 0 INTO o;",
			name, name)
		id, handle, err := f.Engine.DeployScript(script)
		if err != nil {
			t.Fatalf("DeployScript on %q: %v", name, err)
		}
		if !strings.HasPrefix(id, "rq") || handle == "" {
			t.Errorf("deploy on %q = %q, %q", name, id, handle)
		}
		handles = append(handles, handle)
	}
	if qc := f.Engine.QueryCount(); qc != len(names) {
		t.Errorf("QueryCount = %d, want %d (one query per shard)", qc, len(names))
	}
	for _, h := range handles {
		if err := f.Engine.Withdraw(h); err != nil {
			t.Fatalf("Withdraw(%q): %v", h, err)
		}
	}
	if qc := f.Engine.QueryCount(); qc != 0 {
		t.Errorf("QueryCount after withdraw = %d, want 0", qc)
	}
}
