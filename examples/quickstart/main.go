// Quickstart: embed the eXACML+ framework in-process, protect a stream
// with a policy, request access and consume the filtered stream.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/source"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func main() {
	// 1. Bring up the framework and register a data-owner stream.
	fw := core.New("quickstart")
	defer fw.Close()
	if err := fw.RegisterStream("weather", source.WeatherSchema()); err != nil {
		log.Fatal(err)
	}

	// 2. The owner publishes a policy: subject "alice" may read the
	// weather stream, but sees only (samplingtime, rainrate) and only
	// while it rains.
	policy := xacml.NewPermitPolicy("owner:weather:alice",
		xacml.NewTarget("alice", "weather", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition, "rainrate > 0"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationMap,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "samplingtime"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "rainrate"),
			},
		},
	)
	if err := fw.AddPolicy(policy); err != nil {
		log.Fatal(err)
	}

	// 3. Alice requests the stream and gets a handle.
	resp, err := core.RequireHandle(fw.Request("alice", "weather", "read", nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granted: handle=%s\nStreamSQL deployed:\n%s\n\n", resp.Handle, resp.Script)

	// 4. Alice subscribes; the owner publishes live data.
	sub, err := fw.Subscribe(resp.Handle)
	if err != nil {
		log.Fatal(err)
	}
	station := source.NewWeatherStation(0, 30000, 11)
	for i := 0; i < 200; i++ {
		if err := fw.Publish("weather", station.Next()); err != nil {
			log.Fatal(err)
		}
	}
	fw.Flush()

	fmt.Println("tuples delivered to alice (only rainy samples, projected):")
	n := 0
	for len(sub.C) > 0 {
		t := <-sub.C
		if n < 8 {
			fmt.Printf("  %s\n", t)
		}
		n++
	}
	fmt.Printf("  ... %d tuples total (of 200 published)\n", n)

	// 5. Bob has no policy: denied.
	denied, err := fw.Request("bob", "weather", "read", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbob's request: decision=%s granted=%v\n", denied.Decision, denied.Granted())
}
