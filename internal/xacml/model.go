// Package xacml implements the subset of the OASIS XACML model that the
// paper's framework relies on: XML policies with targets over subjects,
// resources and actions; Permit/Deny rules with combining algorithms; a
// Policy Decision Point that evaluates requests; and obligations that
// are handed back to the Policy Enforcement Point on Permit.
//
// It is the reproduction's stand-in for Sun's XACML implementation. The
// XML vocabulary follows XACML 2.0 closely enough that the paper's
// obligation blocks (Fig 2) parse verbatim.
package xacml

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Standard identifier constants (shortened forms of the XACML URNs).
const (
	// MatchStringEqual tests case-sensitive string equality.
	MatchStringEqual = "urn:oasis:names:tc:xacml:1.0:function:string-equal"
	// MatchStringEqualIgnoreCase tests case-insensitive equality.
	MatchStringEqualIgnoreCase = "urn:oasis:names:tc:xacml:1.0:function:string-equal-ignore-case"
	// MatchAnyURIEqual tests URI equality.
	MatchAnyURIEqual = "urn:oasis:names:tc:xacml:1.0:function:anyURI-equal"

	// AttrSubjectID is the conventional subject identifier attribute.
	AttrSubjectID = "urn:oasis:names:tc:xacml:1.0:subject:subject-id"
	// AttrResourceID is the conventional resource identifier attribute.
	AttrResourceID = "urn:oasis:names:tc:xacml:1.0:resource:resource-id"
	// AttrActionID is the conventional action identifier attribute.
	AttrActionID = "urn:oasis:names:tc:xacml:1.0:action:action-id"

	// DataTypeString is the XML Schema string datatype.
	DataTypeString = "http://www.w3.org/2001/XMLSchema#string"
	// DataTypeInteger is the XML Schema integer datatype.
	DataTypeInteger = "http://www.w3.org/2001/XMLSchema#integer"

	// RuleCombFirstApplicable applies the first rule whose target matches.
	RuleCombFirstApplicable = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"
	// RuleCombPermitOverrides permits if any rule permits.
	RuleCombPermitOverrides = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides"
	// RuleCombDenyOverrides denies if any rule denies.
	RuleCombDenyOverrides = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:deny-overrides"
)

// Effect is a rule's effect.
type Effect string

const (
	// EffectPermit grants access.
	EffectPermit Effect = "Permit"
	// EffectDeny denies access.
	EffectDeny Effect = "Deny"
)

// Decision is the PDP evaluation outcome.
type Decision int

const (
	// NotApplicable means no policy/rule matched the request.
	NotApplicable Decision = iota
	// Permit grants the request.
	Permit
	// Deny rejects the request.
	Deny
	// Indeterminate signals an evaluation error.
	Indeterminate
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	case NotApplicable:
		return "NotApplicable"
	case Indeterminate:
		return "Indeterminate"
	default:
		return "?"
	}
}

// Policy is an XACML policy: a target, a list of rules combined by
// RuleCombiningAlgId, and obligations attached to the final decision.
type Policy struct {
	XMLName            xml.Name    `xml:"Policy"`
	PolicyID           string      `xml:"PolicyId,attr"`
	RuleCombiningAlgID string      `xml:"RuleCombiningAlgId,attr"`
	Description        string      `xml:"Description,omitempty"`
	Target             *Target     `xml:"Target"`
	Rules              []Rule      `xml:"Rule"`
	Obligations        Obligations `xml:"Obligations"`
}

// Rule is one Permit/Deny rule with an optional refining target.
type Rule struct {
	RuleID string  `xml:"RuleId,attr"`
	Effect Effect  `xml:"Effect,attr"`
	Target *Target `xml:"Target"`
}

// Target restricts applicability by subjects, resources and actions.
// A nil section matches anything; within a section, the entries are
// OR-ed; within one entry, the matches are AND-ed (per XACML).
type Target struct {
	Subjects  []TargetEntry `xml:"Subjects>Subject"`
	Resources []TargetEntry `xml:"Resources>Resource"`
	Actions   []TargetEntry `xml:"Actions>Action"`
}

// TargetEntry is one Subject/Resource/Action alternative: the AND of
// its matches.
type TargetEntry struct {
	Matches []Match `xml:",any"`
}

// Match compares a request attribute against a literal value.
type Match struct {
	XMLName    xml.Name
	MatchID    string         `xml:"MatchId,attr"`
	Value      AttributeValue `xml:"AttributeValue"`
	Designator Designator     `xml:",any"`
}

// AttributeValue is a typed literal.
type AttributeValue struct {
	DataType string `xml:"DataType,attr,omitempty"`
	Value    string `xml:",chardata"`
}

// Designator names the request attribute a Match reads.
type Designator struct {
	XMLName     xml.Name
	AttributeID string `xml:"AttributeId,attr"`
	DataType    string `xml:"DataType,attr,omitempty"`
}

// Obligations is the obligations block of a policy.
type Obligations struct {
	Obligations []Obligation `xml:"Obligation"`
}

// Obligation is one obligation: an identifier, the decision it
// accompanies, and its attribute assignments. The eXACML+ stream
// operators (Table 1) are encoded as obligations.
type Obligation struct {
	ObligationID string                `xml:"ObligationId,attr"`
	FulfillOn    Effect                `xml:"FulfillOn,attr"`
	Assignments  []AttributeAssignment `xml:"AttributeAssignment"`
}

// AttributeAssignment carries one obligation parameter.
type AttributeAssignment struct {
	AttributeID string `xml:"AttributeId,attr"`
	DataType    string `xml:"DataType,attr,omitempty"`
	Value       string `xml:",chardata"`
}

// Values returns the assignment values for a given attribute id, in
// document order.
func (o Obligation) Values(attributeID string) []string {
	var out []string
	for _, a := range o.Assignments {
		if a.AttributeID == attributeID {
			out = append(out, strings.TrimSpace(a.Value))
		}
	}
	return out
}

// Value returns the single assignment value for an attribute id, or ""
// if absent.
func (o Obligation) Value(attributeID string) string {
	vs := o.Values(attributeID)
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// ParsePolicy parses a policy XML document.
func ParsePolicy(data []byte) (*Policy, error) {
	var p Policy
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("xacml: parse policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal renders the policy as indented XML.
func (p *Policy) Marshal() ([]byte, error) {
	return xml.MarshalIndent(p, "", "  ")
}

// Validate checks structural invariants.
func (p *Policy) Validate() error {
	if p.PolicyID == "" {
		return fmt.Errorf("xacml: policy has no PolicyId")
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("xacml: policy %q has no rules", p.PolicyID)
	}
	switch p.RuleCombiningAlgID {
	case "", RuleCombFirstApplicable, RuleCombPermitOverrides, RuleCombDenyOverrides:
	default:
		return fmt.Errorf("xacml: policy %q: unsupported combining algorithm %q", p.PolicyID, p.RuleCombiningAlgID)
	}
	for _, r := range p.Rules {
		if r.Effect != EffectPermit && r.Effect != EffectDeny {
			return fmt.Errorf("xacml: rule %q: invalid effect %q", r.RuleID, r.Effect)
		}
	}
	for _, o := range p.Obligations.Obligations {
		if o.ObligationID == "" {
			return fmt.Errorf("xacml: policy %q has an obligation without ObligationId", p.PolicyID)
		}
	}
	return nil
}
