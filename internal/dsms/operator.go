package dsms

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/stream"
)

// operator is a runtime instance of a Box bound to a concrete input
// schema. Operators are single-goroutine state machines: the engine
// guarantees processBatch is never called concurrently for one
// operator.
type operator interface {
	// processBatch consumes a batch of input tuples and returns the
	// output batch. The returned slice may alias in (filter compacts in
	// place) or operator-owned scratch storage, and is only valid until
	// the next processBatch call on the same operator. retain signals
	// that the outputs escape the pipeline (a subscriber or an offline
	// caller holds them beyond the batch): operators that hand out
	// reusable value storage must then allocate fresh storage instead.
	processBatch(in []stream.Tuple, retain bool) ([]stream.Tuple, error)
	// outSchema is the operator's output schema.
	outSchema() *stream.Schema
}

// newOperator instantiates the runtime for a box.
func newOperator(b *Box, in *stream.Schema) (operator, error) {
	out, err := b.OutputSchema(in)
	if err != nil {
		return nil, err
	}
	switch b.Kind {
	case BoxFilter:
		f := &filterOp{schema: in}
		if b.Condition != nil {
			bound, err := expr.Bind(b.Condition, in)
			if err != nil {
				return nil, fmt.Errorf("dsms: filter: %w", err)
			}
			f.bound = bound
		}
		return f, nil
	case BoxMap:
		poss := make([]int, len(b.Attrs))
		for i, attr := range b.Attrs {
			pos, _, ok := in.Lookup(attr)
			if !ok {
				return nil, fmt.Errorf("dsms: map references unknown attribute %q", attr)
			}
			poss[i] = pos
		}
		return &mapOp{poss: poss, out: out}, nil
	case BoxAggregate:
		return newAggregateOp(b, in, out)
	default:
		return nil, fmt.Errorf("dsms: invalid box kind")
	}
}

// pipeline is the compiled operator chain for one deployed query plus
// the reusable batch buffer that lets whole mailbox batches flow
// through the chain without per-tuple slice allocations.
type pipeline struct {
	ops []operator
	// escapes[i] reports whether op i's output tuples reach the
	// pipeline consumer without passing a downstream aggregate.
	// Aggregates copy the attribute values they buffer, so they are a
	// retention barrier: anything before one may reuse value arenas
	// freely even when the final outputs are retained.
	escapes []bool
	// copyIn is set when the first in-place operator (filter) runs
	// directly on the incoming batch, which is shared between all
	// queries on the stream and therefore must not be mutated.
	copyIn bool
	buf    []stream.Tuple
	// isAgg[i] marks op i as a window aggregate, whose emissions feed
	// the window-emit counter when tel is live. tel points at the owning
	// engine's telemetry slot (nil for offline pipelines), so enabling
	// telemetry on a running engine reaches already-deployed queries.
	isAgg []bool
	tel   *atomic.Pointer[engineTelemetry]
}

// buildPipeline instantiates the whole chain for a graph.
func buildPipeline(g *QueryGraph, in *stream.Schema) (*pipeline, *stream.Schema, error) {
	p := &pipeline{
		ops:     make([]operator, 0, len(g.Boxes)),
		escapes: make([]bool, len(g.Boxes)),
	}
	cur := in
	for _, b := range g.Boxes {
		op, err := newOperator(b, cur)
		if err != nil {
			return nil, nil, err
		}
		p.ops = append(p.ops, op)
		cur = op.outSchema()
	}
	hasAgg := false
	p.isAgg = make([]bool, len(p.ops))
	for i := len(p.ops) - 1; i >= 0; i-- {
		p.escapes[i] = !hasAgg
		if _, ok := p.ops[i].(*aggregateOp); ok {
			hasAgg = true
			p.isAgg[i] = true
		}
	}
	// The shared input batch stays aliased through every leading filter
	// (a filter's output IS its input, compacted or passed through), so
	// the batch needs a private copy iff any filter with a real
	// predicate runs before the first map/aggregate — those write into
	// operator-owned scratch and end the aliasing.
	for _, op := range p.ops {
		f, ok := op.(*filterOp)
		if !ok {
			break
		}
		if f.bound != nil {
			p.copyIn = true
			break
		}
	}
	return p, cur, nil
}

// processBatch pushes a whole batch through the chain using the
// pipeline's reused buffers. The returned slice is valid until the
// next call; callers that keep tuples longer must pass retain (value
// storage is then not recycled) and copy the slice header themselves.
func (p *pipeline) processBatch(batch []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	cur := batch
	if p.copyIn {
		p.buf = append(p.buf[:0], batch...)
		cur = p.buf
	}
	for i, op := range p.ops {
		out, err := op.processBatch(cur, retain && p.escapes[i])
		if err != nil {
			return nil, err
		}
		if p.isAgg[i] && len(out) > 0 && p.tel != nil {
			if tel := p.tel.Load(); tel != nil {
				tel.windowEmits.Add(uint64(len(out)))
			}
		}
		if len(out) == 0 {
			return nil, nil
		}
		cur = out
	}
	return cur, nil
}

// filterOp drops tuples that do not satisfy the condition, compacting
// the batch in place: zero allocations on the hot path. The condition
// is compiled against the input schema at build time (expr.Bind) so
// evaluation does no per-tuple attribute-name lookups; a nil bound
// means no condition — the batch passes through untouched.
type filterOp struct {
	bound  *expr.Bound
	schema *stream.Schema
}

func (f *filterOp) processBatch(in []stream.Tuple, _ bool) ([]stream.Tuple, error) {
	if f.bound == nil {
		return in, nil
	}
	out := in[:0]
	for _, t := range in {
		ok, err := f.bound.Eval(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

func (f *filterOp) outSchema() *stream.Schema { return f.schema }

// mapOp projects tuples onto a subset of attributes. Attribute
// positions are resolved once at build time; per batch the projected
// value slices are carved out of one contiguous arena, so the steady
// state allocates nothing.
type mapOp struct {
	poss  []int
	out   *stream.Schema
	hdrs  []stream.Tuple
	arena []stream.Value
}

func (m *mapOp) processBatch(in []stream.Tuple, retain bool) ([]stream.Tuple, error) {
	need := len(in) * len(m.poss)
	arena := m.arena
	if retain || cap(arena) < need {
		// Retained outputs keep pointing into the arena, so hand this
		// one over and start fresh next call.
		arena = make([]stream.Value, 0, need)
	} else {
		arena = arena[:0]
	}
	if cap(m.hdrs) < len(in) {
		m.hdrs = make([]stream.Tuple, 0, len(in))
	}
	out := m.hdrs[:0]
	for _, t := range in {
		base := len(arena)
		for _, p := range m.poss {
			arena = append(arena, t.Values[p])
		}
		out = append(out, stream.Tuple{
			Values:        arena[base:len(arena):len(arena)],
			ArrivalMillis: t.ArrivalMillis,
			Seq:           t.Seq,
		})
	}
	m.hdrs = out
	if !retain {
		m.arena = arena
	}
	return out, nil
}

func (m *mapOp) outSchema() *stream.Schema { return m.out }
