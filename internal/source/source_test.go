package source

import (
	"testing"

	"repro/internal/stream"
)

func TestWeatherStationConforms(t *testing.T) {
	ws := NewWeatherStation(0, 30000, 1)
	schema := WeatherSchema()
	for i, tu := range ws.Take(500) {
		if err := tu.Conforms(schema); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
	}
}

func TestWeatherStationTimestamps(t *testing.T) {
	ws := NewWeatherStation(1000, 30000, 1)
	ts := ws.Take(3)
	for i, want := range []int64{1000, 31000, 61000} {
		v, err := ts[i].Get(WeatherSchema(), "samplingtime")
		if err != nil || v.Millis() != want {
			t.Errorf("tuple %d ts = %v (%v), want %d", i, v, err, want)
		}
	}
}

func TestWeatherStationDeterministic(t *testing.T) {
	a := NewWeatherStation(0, 30000, 7).Take(50)
	b := NewWeatherStation(0, 30000, 7).Take(50)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestWeatherRainIsBursty(t *testing.T) {
	ws := NewWeatherStation(0, 30000, 3)
	schema := WeatherSchema()
	rainy, dry := 0, 0
	for _, tu := range ws.Take(2000) {
		v, _ := tu.Get(schema, "rainrate")
		if v.Double() > 0 {
			rainy++
		} else {
			dry++
		}
		if v.Double() < 0 {
			t.Fatalf("negative rain rate %v", v)
		}
	}
	if rainy == 0 || dry == 0 {
		t.Errorf("rain should alternate: %d rainy, %d dry", rainy, dry)
	}
}

func TestGPSTrackerConforms(t *testing.T) {
	g := NewGPSTracker("dev1", 1.35, 103.82, 0, 5000, 2)
	schema := GPSSchema()
	prev := int64(-1)
	for i, tu := range g.Take(200) {
		if err := tu.Conforms(schema); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		ts, _ := tu.Get(schema, "samplingtime")
		if ts.Millis() <= prev {
			t.Fatalf("timestamps not increasing at %d", i)
		}
		prev = ts.Millis()
		sp, _ := tu.Get(schema, "speed")
		if sp.Double() < 0 || sp.Double() > 90 {
			t.Errorf("speed out of range: %v", sp)
		}
	}
}

func TestGPSTrackerMoves(t *testing.T) {
	g := NewGPSTracker("dev1", 1.35, 103.82, 0, 60000, 2)
	pts := g.Take(100)
	schema := GPSSchema()
	first, _ := pts[0].Get(schema, "latitude")
	last, _ := pts[99].Get(schema, "latitude")
	lon0, _ := pts[0].Get(schema, "longitude")
	lon1, _ := pts[99].Get(schema, "longitude")
	if first.Double() == last.Double() && lon0.Double() == lon1.Double() {
		t.Error("tracker never moved")
	}
}

func TestSchemasDistinct(t *testing.T) {
	if WeatherSchema().Equal(GPSSchema()) {
		t.Error("schemas should differ")
	}
	if !WeatherSchema().Has("rainrate") || !GPSSchema().Has("deviceid") {
		t.Error("expected fields missing")
	}
	_ = stream.TypeDouble
}
