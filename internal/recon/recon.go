// Package recon implements the §3.4 privacy attack executable: given
// multiple sum-aggregated views of the same stream that share a fixed
// advance step M but use increasing window sizes N, N+1, ..., N+M, an
// adversary can reconstruct the original stream from the N-th tuple
// onward. The package both mounts the attack (proving why eXACML+
// permits only a single live aggregation window per user per stream)
// and provides the window-view generator used by its tests, examples
// and benchmarks.
package recon

import (
	"fmt"
)

// SumWindows computes the sum-aggregated view of data under a sliding
// window of the given size and advance step — the attacker-visible
// stream S_i of §3.4.
func SumWindows(data []float64, size, step int) []float64 {
	if size <= 0 || step <= 0 {
		return nil
	}
	var out []float64
	for start := 0; start+size <= len(data); start += step {
		var s float64
		for _, v := range data[start : start+size] {
			s += v
		}
		out = append(out, s)
	}
	return out
}

// Views is the attacker's input: aggregated streams of the same source,
// all with advance step Step, with window sizes Size, Size+1, ...,
// Size+len(Streams)-1 (the §3.4 construction with Q_j = Q_i + 1).
type Views struct {
	// Size is the smallest window size N.
	Size int
	// Step is the shared advance step M.
	Step int
	// Streams[k] is the sum stream for window size Size+k; Streams[0]
	// has window size Size. len(Streams) must be Step+1 to reconstruct
	// every residue class.
	Streams [][]float64
}

// CollectViews runs the aggregation the cloud would perform for each
// window size N..N+M over the raw data, producing the attacker's views.
func CollectViews(data []float64, size, step int) Views {
	v := Views{Size: size, Step: step}
	for k := 0; k <= step; k++ {
		v.Streams = append(v.Streams, SumWindows(data, size+k, step))
	}
	return v
}

// Reconstruct mounts the attack: from the views it rebuilds the
// original stream values a_N, a_{N+1}, ... (everything except the first
// N tuples). It returns the reconstructed suffix, whose element j
// corresponds to original index Size+j.
//
// The construction follows the paper's inductive proof: subtracting the
// k-th view from the (k+1)-th yields T_{k+1} = a_{N+kM+k'}, the
// residue-class subsequences, which interleave into the original
// stream.
func Reconstruct(v Views) ([]float64, error) {
	if v.Step <= 0 || v.Size <= 0 {
		return nil, fmt.Errorf("recon: invalid views (size=%d step=%d)", v.Size, v.Step)
	}
	if len(v.Streams) < v.Step+1 {
		return nil, fmt.Errorf("recon: need %d views (sizes N..N+M), have %d", v.Step+1, len(v.Streams))
	}
	// T[k][i] = Streams[k+1][i] - Streams[k][i] = a_{N + i*M + k}
	// for k in 0..M-1.
	T := make([][]float64, v.Step)
	for k := 0; k < v.Step; k++ {
		a, b := v.Streams[k], v.Streams[k+1]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		T[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			T[k][i] = b[i] - a[i]
		}
	}
	// Interleave: out[i*M + k] = T[k][i].
	minLen := -1
	for _, t := range T {
		if minLen < 0 || len(t) < minLen {
			minLen = len(t)
		}
	}
	if minLen <= 0 {
		return nil, fmt.Errorf("recon: views too short to reconstruct anything")
	}
	out := make([]float64, 0, minLen*v.Step)
	for i := 0; i < minLen; i++ {
		for k := 0; k < v.Step; k++ {
			out = append(out, T[k][i])
		}
	}
	return out, nil
}

// VerifyAgainst checks a reconstruction against the original data,
// returning the number of positions compared and the first mismatch
// (index relative to the original stream), or -1 if all match within
// eps.
func VerifyAgainst(original []float64, size int, reconstructed []float64, eps float64) (compared int, firstMismatch int) {
	firstMismatch = -1
	for j, v := range reconstructed {
		idx := size + j
		if idx >= len(original) {
			break
		}
		compared++
		d := v - original[idx]
		if d < -eps || d > eps {
			if firstMismatch < 0 {
				firstMismatch = idx
			}
		}
	}
	return compared, firstMismatch
}
