// Package ratelimit provides the one token bucket both admission
// layers meter with: the sharded runtime's per-stream quota
// (internal/runtime) and the dsmsd's direct-ingest metering
// (internal/dsmsd). Keeping a single implementation in a leaf package
// guarantees the front and the shard can never diverge on refill or
// burst semantics.
package ratelimit

import (
	"math"
	"sync"
	"time"
)

// Bucket is a classic token bucket: tokens refill continuously at rate
// per second up to burst, and a batch may take up to the available
// whole tokens (partial grants admit a batch prefix). The zero of the
// type is not usable; a nil *Bucket grants everything, so an unlimited
// stream carries no bucket at all.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// New builds a bucket granting rate tokens/second with the given
// depth; the bucket starts full. rate <= 0 returns nil (unlimited);
// burst <= 0 defaults to one second of rate.
func New(rate float64, burst int) *Bucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
	}
	return &Bucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// Take grants up to want tokens, returning how many were granted. A
// nil bucket grants everything.
func (b *Bucket) Take(want int) int {
	if b == nil {
		return want
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	grant := int(b.tokens)
	if grant > want {
		grant = want
	}
	if grant > 0 {
		b.tokens -= float64(grant)
	}
	return grant
}
