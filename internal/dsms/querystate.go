package dsms

import (
	"errors"
	"fmt"

	"repro/internal/stream"
)

// ErrSeqBehind reports a SetStreamSeq that would move a stream's
// sequence counter backwards. The counter only ever advances; callers
// importing state into a stream that already progressed past it (a
// follower that kept replicating while the primary exported) treat
// this as "nothing to do".
var ErrSeqBehind = errors.New("sequence counter already ahead")

// QueryState is the serializable execution state of one deployed
// continuous query: the window contents and incremental accumulators of
// its aggregate operators, plus the input stream's sequence position at
// export time. It is what the dsms.migrate verb moves between engines
// so a query resumed on a replica emits exactly what the original would
// have — same values, same Seq/ArrivalMillis provenance — instead of
// restarting from an empty window.
//
// Stateless operators (filter, map) carry nothing; an entry exists only
// per aggregate operator, keyed by its position in the operator chain.
// Export requires a quiesced query (the engine flushes before
// snapshotting, and the snapshot itself runs inside the query's own
// mailbox goroutine, so it can never observe a half-applied batch).
type QueryState struct {
	// Query is the source query's id (informational).
	Query string `json:"query,omitempty"`
	// Input is the source query's input stream name.
	Input string `json:"input,omitempty"`
	// InputSeq is the input stream's sequence counter at export: the
	// importing engine fast-forwards its own counter to it so emission
	// provenance continues the source lineage.
	InputSeq uint64 `json:"input_seq,omitempty"`
	// Ops holds one entry per stateful operator.
	Ops []OperatorState `json:"ops,omitempty"`
}

// OperatorState is the state of one operator, addressed by its index in
// the compiled operator chain (the chain is a pure function of the
// query graph, so the index is stable across engines compiling the same
// script).
type OperatorState struct {
	Index     int             `json:"index"`
	Aggregate *AggregateState `json:"aggregate,omitempty"`
	// Stage carries a staged pipeline's stage-operator state (open
	// window partials, record numbering, watermark frontier). The stage
	// runs after the operator chain, so its entry uses Index ==
	// len(chain) — one past the last box operator.
	Stage *StageState `json:"stage,omitempty"`
}

// AggregateState serializes an aggregateOp: the window ring in logical
// order (head first) plus every accumulator that is not a pure function
// of the ring. The min/max monotonic deques are deliberately absent —
// a monotonic deque is a pure function of the window content sequence,
// so the importer rebuilds them by replaying the ring, which keeps the
// wire form small and cannot desynchronize. incSum must travel: it
// flips off permanently once a running sum leaves float64's
// exact-integer range, and recomputing it from the ring would re-enable
// incremental summing the source had already abandoned, changing
// emitted bits.
type AggregateState struct {
	Arrival []int64          `json:"arrival"`
	Seq     []uint64         `json:"seq"`
	Cols    [][]stream.Value `json:"cols"`

	Sums    []float64 `json:"sums"`
	Nonnull []int64   `json:"nonnull"`
	IncSum  []bool    `json:"inc_sum"`

	NextG uint64 `json:"next_g"`
	BaseG uint64 `json:"base_g"`
	Skip  int64  `json:"skip"`

	Tstart      int64 `json:"tstart"`
	Sorted      bool  `json:"sorted"`
	LastArrival int64 `json:"last_arrival"`
}

// exportState snapshots the operator. Runs inside the query goroutine.
func (a *aggregateOp) exportState() *AggregateState {
	k := len(a.poss)
	n := a.ring.n
	st := &AggregateState{
		Arrival:     make([]int64, n),
		Seq:         make([]uint64, n),
		Cols:        make([][]stream.Value, k),
		Sums:        append([]float64(nil), a.sums...),
		Nonnull:     append([]int64(nil), a.nonnull...),
		IncSum:      append([]bool(nil), a.incSum...),
		NextG:       a.nextG,
		BaseG:       a.baseG,
		Skip:        a.skip,
		Tstart:      a.tstart,
		Sorted:      a.sorted,
		LastArrival: a.lastArrival,
	}
	for c := range st.Cols {
		st.Cols[c] = make([]stream.Value, n)
	}
	for i := 0; i < n; i++ {
		j := a.ring.idx(i)
		st.Arrival[i] = a.ring.arrival[j]
		st.Seq[i] = a.ring.seq[j]
		for c := 0; c < k; c++ {
			st.Cols[c][i] = a.ring.cols[c][j]
		}
	}
	return st
}

// importState replaces the operator's state wholesale. Runs inside the
// query goroutine.
func (a *aggregateOp) importState(st *AggregateState) error {
	k := len(a.poss)
	n := len(st.Arrival)
	if len(st.Seq) != n || len(st.Cols) != k ||
		len(st.Sums) != k || len(st.Nonnull) != k || len(st.IncSum) != k {
		return fmt.Errorf("dsms: aggregate state shape mismatch (want %d specs, ring %d)", k, n)
	}
	for c := range st.Cols {
		if len(st.Cols[c]) != n {
			return fmt.Errorf("dsms: aggregate state column %d has %d entries, ring has %d", c, len(st.Cols[c]), n)
		}
	}
	r := newWinRing(k)
	for i := 0; i < n; i++ {
		if r.n == len(r.arrival) {
			r.grow()
		}
		j := r.idx(r.n)
		r.arrival[j] = st.Arrival[i]
		r.seq[j] = st.Seq[i]
		for c := 0; c < k; c++ {
			r.cols[c][j] = st.Cols[c][i]
		}
		r.n++
	}
	a.ring = r
	copy(a.sums, st.Sums)
	copy(a.nonnull, st.Nonnull)
	copy(a.incSum, st.IncSum)
	a.nextG = st.NextG
	a.baseG = st.BaseG
	a.skip = st.Skip
	a.tstart = st.Tstart
	a.sorted = st.Sorted
	a.lastArrival = st.LastArrival
	// Rebuild the min/max deques by replaying the ring in logical order:
	// a monotonic deque is a pure function of the pushed sequence, so
	// this reproduces the source's deques exactly. Only tuple windows
	// maintain them (time windows scan per range).
	for _, d := range a.deques {
		if d != nil {
			d.reset()
		}
	}
	if a.win.Type == WindowTuple {
		for i := 0; i < n; i++ {
			g := st.BaseG + uint64(i)
			for c, d := range a.deques {
				if d == nil {
					continue
				}
				if v := st.Cols[c][i]; !v.IsNull() {
					if err := d.push(g, v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// stateSnap is the control message the export/import paths inject into
// a query's mailbox: handled by the query goroutine itself, it is
// ordered against batches, so a snapshot can never observe (or clobber)
// a half-applied batch.
type stateSnap struct {
	install *QueryState // nil: export
	reply   chan stateSnapResult
}

type stateSnapResult struct {
	state *QueryState
	err   error
}

// applySnap executes a state snapshot or install against the query's
// operator chain. Runs inside the query goroutine.
func (q *deployedQuery) applySnap(s *stateSnap) stateSnapResult {
	if s.install == nil {
		st := &QueryState{Query: q.dep.ID, Input: q.dep.Input}
		for i, op := range q.pipe.ops {
			if agg, ok := op.(*aggregateOp); ok {
				st.Ops = append(st.Ops, OperatorState{Index: i, Aggregate: agg.exportState()})
			}
		}
		if q.pipe.stage != nil {
			st.Ops = append(st.Ops, OperatorState{Index: len(q.pipe.ops), Stage: q.pipe.stage.exportState()})
		}
		return stateSnapResult{state: st}
	}
	for _, os := range s.install.Ops {
		if os.Index == len(q.pipe.ops) && q.pipe.stage != nil {
			if os.Stage == nil {
				return stateSnapResult{err: fmt.Errorf("dsms: operator %d is the stage, state carries none", os.Index)}
			}
			if err := q.pipe.stage.importState(os.Stage); err != nil {
				return stateSnapResult{err: err}
			}
			continue
		}
		if os.Index < 0 || os.Index >= len(q.pipe.ops) {
			return stateSnapResult{err: fmt.Errorf("dsms: state names operator %d, chain has %d", os.Index, len(q.pipe.ops))}
		}
		agg, ok := q.pipe.ops[os.Index].(*aggregateOp)
		if !ok || os.Aggregate == nil {
			return stateSnapResult{err: fmt.Errorf("dsms: operator %d is not an aggregate", os.Index)}
		}
		if err := agg.importState(os.Aggregate); err != nil {
			return stateSnapResult{err: err}
		}
	}
	return stateSnapResult{}
}

// snapshot routes a stateSnap through the query mailbox and waits for
// the result.
func (q *deployedQuery) snapshot(s *stateSnap) (stateSnapResult, error) {
	s.reply = make(chan stateSnapResult, 1)
	if !q.send(batchMsg{snap: s}) {
		return stateSnapResult{}, fmt.Errorf("dsms: %w %q", ErrUnknownQuery, q.dep.ID)
	}
	return <-s.reply, nil
}

// lookupQuery resolves an id or handle to the live query.
func (e *Engine) lookupQuery(idOrHandle string) (*deployedQuery, error) {
	e.mu.RLock()
	id := idOrHandle
	if mapped, ok := e.byURI[idOrHandle]; ok {
		id = mapped
	}
	q, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dsms: %w %q", ErrUnknownQuery, idOrHandle)
	}
	return q, nil
}

// ExportQueryState serializes a deployed query's window state for
// migration to another engine. The engine is flushed first and the
// snapshot runs inside the query's own goroutine, so the state is
// consistent with everything ingested before the call; the caller must
// quiesce publishers for the exported InputSeq to exactly delimit the
// tuples the state covers.
func (e *Engine) ExportQueryState(idOrHandle string) (*QueryState, error) {
	q, err := e.lookupQuery(idOrHandle)
	if err != nil {
		return nil, err
	}
	e.Flush()
	res, err := q.snapshot(&stateSnap{})
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}
	st := res.state
	st.InputSeq, _ = e.StreamSeq(q.dep.Input)
	return st, nil
}

// ImportQueryState installs a previously exported state into a deployed
// query (normally one just deployed from the same script), replacing
// its window contents and accumulators wholesale. The operator chains
// must have the same shape — guaranteed when both sides compiled the
// same script. The input stream's sequence counter is NOT touched; use
// SetStreamSeq when continuing a lineage on a fresh engine.
func (e *Engine) ImportQueryState(idOrHandle string, st *QueryState) error {
	if st == nil {
		return fmt.Errorf("dsms: nil query state")
	}
	q, err := e.lookupQuery(idOrHandle)
	if err != nil {
		return err
	}
	res, err := q.snapshot(&stateSnap{install: st})
	if err != nil {
		return err
	}
	return res.err
}

// StreamSeq reports a stream's current sequence counter (the Seq of the
// last sealed tuple; 0 when nothing was ever ingested).
func (e *Engine) StreamSeq(name string) (uint64, error) {
	is, err := e.lookupStream(name)
	if err != nil {
		return 0, err
	}
	is.sealMu.Lock()
	seq := is.seq
	is.sealMu.Unlock()
	return seq, nil
}

// SetStreamSeq fast-forwards a stream's sequence counter so tuples
// sealed from now on continue a migrated lineage. Moving backwards is
// refused with ErrSeqBehind (wrapped); setting the current value is a
// no-op.
func (e *Engine) SetStreamSeq(name string, seq uint64) error {
	is, err := e.lookupStream(name)
	if err != nil {
		return err
	}
	is.sealMu.Lock()
	defer is.sealMu.Unlock()
	if is.gone {
		return fmt.Errorf("dsms: %w %q", ErrUnknownStream, name)
	}
	if seq < is.seq {
		return fmt.Errorf("dsms: stream %q: %w (at %d, asked %d)", name, ErrSeqBehind, is.seq, seq)
	}
	is.seq = seq
	return nil
}
