// Self-healing tests against real dsmsd processes over loopback: a
// killed-and-restarted follower is re-adopted and re-fed from the
// replication log, a killed remote primary fails over to its local
// follower with window state intact, and a stalled (accepting but
// never answering) dsmsd cannot leak goroutines. Kills and restarts
// are scheduled with netsim.Script at logical publish counts, so the
// chaos runs are deterministic.
package runtime_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	stdruntime "runtime"
	"testing"
	"time"

	"repro/internal/dsms"
	"repro/internal/dsmsd"
	"repro/internal/netsim"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// publishStamped publishes one batch of pre-stamped tuples, returning
// the verdict (errors allowed: failover windows produce them).
func publishStamped(rt *runtime.Runtime, name string, seq *int, n int) (runtime.PublishVerdict, error) {
	ts := make([]stream.Tuple, n)
	for i := range ts {
		ms := int64(1000 + *seq)
		ts[i] = mkTuple(float64(*seq), ms)
		ts[i].ArrivalMillis = ms
		*seq++
	}
	return rt.PublishBatchVerdict(name, ts)
}

// TestRestartedFollowerReadoption kills a remote follower's dsmsd
// mid-run, restarts an empty replacement on the same address, and
// requires the probe to re-adopt it and the replication log to re-feed
// it to the full flow — after which the stream can still fail over
// onto it. The kill and restart fire at scripted publish counts.
func TestRestartedFollowerReadoption(t *testing.T) {
	srv, addr := startDSMSD(t, "follower", nil)
	var srv2 *dsmsd.Server
	readopted := make(chan struct{}, 8)

	rt := runtime.New("readopt", runtime.Options{
		Replication: 2,
		Backends: []runtime.BackendSpec{
			{}, // shard 0: local, will own the stream
			{Addr: addr, Remote: runtime.RemoteOptions{
				MaxReconnects:    2,
				ReconnectBackoff: time.Millisecond,
				HealthInterval:   3 * time.Millisecond,
				CallTimeout:      2 * time.Second,
				OnReadopt: func() error {
					select {
					case readopted <- struct{}{}:
					default:
					}
					return nil
				},
			}},
		},
	})
	defer rt.Close()
	defer func() {
		if srv2 != nil {
			srv2.Close()
			srv2.Engine.Close()
		}
	}()

	names := streamNamesPerShard(t, rt)
	name := names[0] // owned by the local shard; remote shard follows
	if err := rt.CreateStream(name, testSchema()); err != nil {
		t.Fatal(err)
	}

	script := netsim.NewScript(
		netsim.Event{At: 6, Name: "kill-follower", Do: func() {
			srv.Close()
			srv.Engine.Close()
		}},
		netsim.Event{At: 12, Name: "restart-follower", Do: func() {
			// Wait for the probe to declare the follower down first: a
			// restart faster than down detection is the reconnect path
			// (exercised by the replica-gap resync), not re-adoption.
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().Shards[1].Healthy {
				if time.Now().After(deadline) {
					t.Error("probe never declared the killed follower down")
					return
				}
				time.Sleep(time.Millisecond)
			}
			// Rebind the same address with a fresh, empty engine (a
			// restarted process remembers nothing). The old listener
			// just closed, so retry the bind briefly.
			eng := dsms.NewEngine("follower-reborn")
			for {
				s := dsmsd.NewServer(eng, nil)
				if _, err := s.Listen(addr); err == nil {
					srv2 = s
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("could not rebind %s", addr)
					eng.Close()
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}},
	)

	seq := 0
	for batch := 0; batch < 18; batch++ {
		v, err := publishStamped(rt, name, &seq, 25)
		if err != nil || v.Accepted != 25 {
			t.Fatalf("batch %d: verdict %+v, err %v (owner is local; follower death must not affect publishes)", batch, v, err)
		}
		script.Advance(1)
	}
	if !script.Done() {
		t.Fatal("fault script never finished")
	}

	select {
	case <-readopted:
	case <-time.After(10 * time.Second):
		t.Fatal("restarted follower was never re-adopted")
	}

	// More flow after re-adoption, then a full Flush: the replication
	// log must have re-fed the empty replacement from the base.
	if v, err := publishStamped(rt, name, &seq, 50); err != nil || v.Accepted != 50 {
		t.Fatalf("post-readopt publish: %+v, %v", v, err)
	}
	rt.Flush()
	if got, err := srv2.Engine.StreamSeq(name); err != nil || got != uint64(seq) {
		t.Fatalf("restarted follower sealed %d tuples (%v), want %d", got, err, seq)
	}
	for _, l := range rt.ReplicaLag(name) {
		if l.Lag != 0 || l.Paused {
			t.Errorf("replica lag after Flush: %+v, want caught up and unpaused", l)
		}
	}
	checkInvariant(t, rt)

	// The re-adopted follower is a real replica again: kill the owner
	// and the stream must fail over onto it.
	rt.FailShard(0, errors.New("injected owner death"))
	if v, err := publishStamped(rt, name, &seq, 50); err != nil || v.Accepted != 50 {
		t.Fatalf("post-failover publish: %+v, %v", v, err)
	}
	rt.Flush()
	if got, err := srv2.Engine.StreamSeq(name); err != nil || got != uint64(seq) {
		t.Fatalf("promoted follower sealed %d tuples (%v), want %d", got, err, seq)
	}
	checkInvariant(t, rt)
}

// TestRemotePrimaryFailoverBlastRadius kills a remote primary at a
// replication checkpoint (Flush boundary) and measures the blast
// radius: publishes error only during the down-detection window (all
// accounted — the invariant holds), the query fails over to the warm
// local standby, and the subscription sees every ingested tuple
// exactly once, in order, across the cut.
func TestRemotePrimaryFailoverBlastRadius(t *testing.T) {
	srv, addr := startDSMSD(t, "primary", nil)
	defer srv.Close()
	defer srv.Engine.Close()

	rt := runtime.New("blast", runtime.Options{
		Replication: 2,
		Backends: []runtime.BackendSpec{
			{Addr: addr, Remote: fastRemote()}, // shard 0: remote, owns the stream
			{},                                 // shard 1: local follower
		},
	})
	defer rt.Close()

	names := streamNamesPerShard(t, rt)
	name := names[0] // owned by the remote shard
	if err := rt.CreateStream(name, testSchema()); err != nil {
		t.Fatal(err)
	}
	id, _, err := rt.DeployScript(fmt.Sprintf(
		"CREATE INPUT STREAM %s (a double, t timestamp); CREATE OUTPUT STREAM all_out; SELECT * FROM %s WHERE a > -1 INTO all_out;",
		name, name))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Phase 1: a replicated, emitted prefix. Flush is the checkpoint —
	// every accepted tuple is on the follower before the kill.
	seq := 0
	for batch := 0; batch < 6; batch++ {
		if v, err := publishStamped(rt, name, &seq, 50); err != nil || v.Accepted != 50 {
			t.Fatalf("prefix batch %d: %+v, %v", batch, v, err)
		}
	}
	rt.Flush()

	// Phase 2: kill the primary and keep publishing. Early batches are
	// accepted into the dead shard's queue and die at drain time (or
	// are refused once fail-fast engages) — all accounted as errors —
	// until the reconnect budget burns, OnDown fires and the stream
	// fails over. Recovery is observed structurally: the query's
	// active part lands on the follower shard.
	srv.Close()
	srv.Engine.Close()
	recovered := false
	for attempt := 0; attempt < 2000 && !recovered; attempt++ {
		if _, err := publishStamped(rt, name, &seq, 10); err != nil {
			time.Sleep(time.Millisecond)
		}
		if d, ok := rt.Query(id); ok && d.Shards()[0] == 1 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("query never failed over to the follower after primary death")
	}

	// Phase 3: steady flow on the promoted follower.
	for batch := 0; batch < 4; batch++ {
		if v, err := publishStamped(rt, name, &seq, 50); err != nil || v.Accepted != 50 {
			t.Fatalf("post-failover batch %d: %+v, %v", batch, v, err)
		}
	}
	rt.Flush()
	checkInvariant(t, rt)

	// Blast radius: everything offered is either ingested or accounted
	// as an error from the down-detection window — nothing vanishes.
	st := rt.Stats()
	var ingested, errsAccounted, offered uint64
	for _, row := range st.Streams {
		if row.Stream == name {
			ingested, errsAccounted, offered = row.Ingested, row.Errors, row.Offered
		}
	}
	if offered != uint64(seq) {
		t.Errorf("stream offered = %d, want %d published", offered, seq)
	}
	if errsAccounted == 0 {
		t.Error("no publish errors accounted: the kill window cannot have been free")
	}
	if ingested < 300+200 {
		t.Errorf("ingested = %d, want at least the 300 pre-kill + 200 post-failover tuples", ingested)
	}

	// The query moved to the follower, and the consumer saw every
	// ingested tuple exactly once, in order: the pass-through filter
	// emits one tuple per input, so counts match and sequence numbers
	// strictly increase across the failover cut.
	d, ok := rt.Query(id)
	if !ok || d.Shards()[0] != 1 {
		t.Fatalf("query after failover = %+v (ok=%v), want it on shard 1", d, ok)
	}
	got := collectEmissions(t, sub, int(ingested))
	if len(got) != int(ingested) {
		t.Fatalf("consumer saw %d emissions, want %d (one per ingested tuple)", len(got), ingested)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("emission %d out of order or duplicated: seq %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}

// TestStalledRemoteNoGoroutineLeak hammers a dsmsd address that
// accepts connections and reads requests but never replies: every RPC
// must die on its connection deadline, and repeated
// create/fail/close cycles must not accumulate goroutines (the RPC
// timeout path is deadline-based — no watchdog goroutine per call).
func TestStalledRemoteNoGoroutineLeak(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, c) }() // read forever, never answer
		}
	}()

	before := stdruntime.NumGoroutine()
	for i := 0; i < 12; i++ {
		rt := runtime.New(fmt.Sprintf("stall%d", i), runtime.Options{
			Backends: []runtime.BackendSpec{{Addr: ln.Addr().String(), Remote: runtime.RemoteOptions{
				MaxReconnects:    1,
				ReconnectBackoff: time.Millisecond,
				HealthInterval:   -1,
				CallTimeout:      15 * time.Millisecond,
			}}},
		})
		if err := rt.CreateStream("s", testSchema()); err == nil {
			t.Fatal("stream DDL against a stalled dsmsd succeeded")
		}
		rt.Close()
	}

	// Settle: connection readers and probe goroutines unwind
	// asynchronously after Close.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := stdruntime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after stalled-backend churn\n%s",
				before, stdruntime.NumGoroutine(), buf[:stdruntime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
