package xacmlplus

import (
	"strings"
	"testing"

	"repro/internal/dsms"
	"repro/internal/expr"
)

// fig4aXML is the user query of Fig 4(a) (with the paper's unclosed
// WindowSize/WindowStep tags fixed).
const fig4aXML = `
<UserQuery>
  <Stream name="weather" />
  <Filter>
    <FilterCondition>
      RainRate &gt; 50
    </FilterCondition>
  </Filter>
  <Map>
    <Attribute>RainRate</Attribute>
  </Map>
  <Aggregation>
    <WindowType>tuple</WindowType>
    <WindowSize>10</WindowSize>
    <WindowStep>2</WindowStep>
    <Attribute>avg(RainRate)</Attribute>
  </Aggregation>
</UserQuery>`

func TestParseFig4a(t *testing.T) {
	q, err := ParseUserQuery([]byte(fig4aXML))
	if err != nil {
		t.Fatalf("ParseUserQuery: %v", err)
	}
	if q.Stream.Name != "weather" {
		t.Errorf("stream = %q", q.Stream.Name)
	}
	g, err := q.ToGraph()
	if err != nil {
		t.Fatalf("ToGraph: %v", err)
	}
	if len(g.Boxes) != 3 {
		t.Fatalf("graph = %s", g)
	}
	if !expr.Equal(g.Boxes[0].Condition, expr.MustParse("RainRate > 50")) {
		t.Errorf("filter = %s", g.Boxes[0])
	}
	if g.Boxes[1].Attrs[0] != "RainRate" {
		t.Errorf("map = %s", g.Boxes[1])
	}
	agg := g.Boxes[2]
	if agg.Window.Size != 10 || agg.Window.Step != 2 || agg.Window.Type != dsms.WindowTuple {
		t.Errorf("window = %v", agg.Window)
	}
	if len(agg.Aggs) != 1 || agg.Aggs[0].Func != dsms.AggAvg || agg.Aggs[0].Attr != "RainRate" {
		t.Errorf("aggs = %v", agg.Aggs)
	}
}

func TestUserQueryPartialSections(t *testing.T) {
	q, err := ParseUserQuery([]byte(`<UserQuery><Stream name="s"/></UserQuery>`))
	if err != nil {
		t.Fatalf("empty query: %v", err)
	}
	g, err := q.ToGraph()
	if err != nil || len(g.Boxes) != 0 {
		t.Errorf("empty query graph: (%s,%v)", g, err)
	}
	q, err = ParseUserQuery([]byte(`<UserQuery><Stream name="s"/><Filter><FilterCondition>a > 1</FilterCondition></Filter></UserQuery>`))
	if err != nil {
		t.Fatalf("filter-only: %v", err)
	}
	g, err = q.ToGraph()
	if err != nil || len(g.Boxes) != 1 || g.Boxes[0].Kind != dsms.BoxFilter {
		t.Errorf("filter-only graph: (%s,%v)", g, err)
	}
}

func TestUserQueryErrors(t *testing.T) {
	cases := []string{
		`<UserQuery></UserQuery>`, // no stream
		`<oops`,
	}
	for _, src := range cases {
		if _, err := ParseUserQuery([]byte(src)); err == nil {
			t.Errorf("ParseUserQuery(%q) should fail", src)
		}
	}
	graphBad := []string{
		`<UserQuery><Stream name="s"/><Filter><FilterCondition></FilterCondition></Filter></UserQuery>`,
		`<UserQuery><Stream name="s"/><Filter><FilterCondition>%%%</FilterCondition></Filter></UserQuery>`,
		`<UserQuery><Stream name="s"/><Map></Map></UserQuery>`,
		`<UserQuery><Stream name="s"/><Aggregation><WindowType>tuple</WindowType><WindowSize>0</WindowSize><WindowStep>1</WindowStep><Attribute>avg(a)</Attribute></Aggregation></UserQuery>`,
		`<UserQuery><Stream name="s"/><Aggregation><WindowType>weird</WindowType><WindowSize>5</WindowSize><WindowStep>1</WindowStep><Attribute>avg(a)</Attribute></Aggregation></UserQuery>`,
		`<UserQuery><Stream name="s"/><Aggregation><WindowType>tuple</WindowType><WindowSize>5</WindowSize><WindowStep>1</WindowStep></Aggregation></UserQuery>`,
		`<UserQuery><Stream name="s"/><Aggregation><WindowType>tuple</WindowType><WindowSize>5</WindowSize><WindowStep>1</WindowStep><Attribute>median(a)</Attribute></Aggregation></UserQuery>`,
	}
	for _, src := range graphBad {
		q, err := ParseUserQuery([]byte(src))
		if err != nil {
			continue
		}
		if _, err := q.ToGraph(); err == nil {
			t.Errorf("ToGraph(%q) should fail", src)
		}
	}
}

func TestParseCallForms(t *testing.T) {
	s, err := parseCallForm("avg(RainRate)")
	if err != nil || s.Func != dsms.AggAvg || s.Attr != "RainRate" {
		t.Errorf("call form: (%+v,%v)", s, err)
	}
	s, err = parseCallForm("rainrate:max")
	if err != nil || s.Func != dsms.AggMax {
		t.Errorf("colon form: (%+v,%v)", s, err)
	}
	for _, bad := range []string{"avg()", "(a)", "nope", "median(a)"} {
		if _, err := parseCallForm(bad); err == nil {
			t.Errorf("parseCallForm(%q) should fail", bad)
		}
	}
}

func TestUserQueryXMLRoundTrip(t *testing.T) {
	q, err := ParseUserQuery([]byte(fig4aXML))
	if err != nil {
		t.Fatal(err)
	}
	data, err := q.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q2, err := ParseUserQuery(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	g1, _ := q.ToGraph()
	g2, err := q2.ToGraph()
	if err != nil {
		t.Fatalf("round-tripped graph: %v", err)
	}
	if len(g1.Boxes) != len(g2.Boxes) {
		t.Errorf("box count changed: %d vs %d", len(g1.Boxes), len(g2.Boxes))
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	g := dsms.NewQueryGraph("weather",
		dsms.NewFilterBox(expr.MustParse("rainrate > 50")),
		dsms.NewMapBox("rainrate"),
		dsms.NewAggregateBox(dsms.WindowSpec{Type: dsms.WindowTuple, Size: 10, Step: 2},
			dsms.AggSpec{Attr: "rainrate", Func: dsms.AggAvg}),
	)
	q, err := FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if q.Filter == nil || q.Map == nil || q.Aggregation == nil {
		t.Fatalf("query sections missing: %+v", q)
	}
	if !strings.Contains(q.Aggregation.Attributes[0], "avg(") {
		t.Errorf("agg attribute = %q", q.Aggregation.Attributes[0])
	}
	g2, err := q.ToGraph()
	if err != nil {
		t.Fatalf("ToGraph: %v", err)
	}
	if len(g2.Boxes) != 3 || !expr.Equal(g2.Boxes[0].Condition, g.Boxes[0].Condition) {
		t.Errorf("round trip graph = %s", g2)
	}
}
