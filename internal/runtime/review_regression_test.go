// Regression tests for three self-healing edge cases found in review:
// a re-adopted shard that is currently a route's promoted primary must
// not be re-enlisted as a follower of its own stream (double ingest),
// a follower that restarts empty after the bounded replication log has
// trimmed must still be re-fed (the shipper declares the gap instead
// of livelocking on replica_gap refusals), and MigrateQuery must fence
// the paused primary's in-flight batch before sampling the replication
// log (otherwise exported window state can cover tuples the target
// re-applies through replication).
package runtime_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dsms"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// flushWithin runs rt.Flush under a watchdog: the trimmed-log resync
// bug was a livelock, and a hung Flush should fail the test, not stall
// the whole run until the go test timeout.
func flushWithin(t *testing.T, rt *runtime.Runtime, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { rt.Flush(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("Flush did not complete: replication shipper is stuck")
	}
}

// TestReadoptPromotedPrimaryNotSelfFollower: the original primary dies,
// a follower is promoted, then the promoted follower dies too with no
// healthy candidate left. When it comes back, re-adoption must resume
// it as the route's serving primary — NOT additionally enlist it as a
// follower of its own stream, which would drain every publish into its
// engine and then ship the same tuples back to it through the
// replication log, double-ingesting the flow.
func TestReadoptPromotedPrimaryNotSelfFollower(t *testing.T) {
	rt := runtime.New("selfprimary", runtime.Options{Shards: 2, Replication: 2})
	defer rt.Close()
	if err := rt.CreateStream("s", testSchema()); err != nil {
		t.Fatal(err)
	}
	in := replInput(400)
	publishChunks(t, rt, "s", cloneInput(in[:200]), 50, nil)
	rt.Flush()

	primary := rt.ShardForStream("s")
	follower := 1 - primary
	rt.FailShard(primary, errors.New("injected primary death"))
	// The follower is now the promoted primary; publishes keep flowing.
	publishChunks(t, rt, "s", cloneInput(in[200:300]), 50, nil)

	// Kill the promoted primary too: no healthy candidate remains, so
	// the route fails fast until a shard is re-adopted.
	rt.FailShard(follower, errors.New("injected promoted death"))
	if _, err := rt.PublishBatchVerdict("s", cloneInput(in[300:310])); err == nil {
		t.Fatal("publish succeeded with every replica dead")
	}

	// Re-adopt the promoted primary (its engine survived in-process;
	// a restarted dsmsd would be the remote equivalent).
	if err := rt.ReadoptShard(follower); err != nil {
		t.Fatalf("readopt shard %d: %v", follower, err)
	}
	for _, l := range rt.ReplicaLag("s") {
		if l.Shard == follower {
			t.Fatalf("re-adopted shard %d is enlisted as a follower of the stream it serves as primary", follower)
		}
	}
	publishChunks(t, rt, "s", cloneInput(in[300:]), 50, nil)
	flushWithin(t, rt, 15*time.Second)

	// Every accepted tuple must be in the serving engine exactly once:
	// a self-follower would re-ingest everything published after the
	// re-adoption through the replication log.
	if got, want := localEngineSeq(t, rt, follower, "s"), uint64(400); got != want {
		t.Fatalf("promoted primary sealed %d tuples, want %d (double ingest via self-replication?)", got, want)
	}
	checkInvariant(t, rt)
}

// restartableBackend delegates to a swappable LocalBackend, so a test
// can model a follower process that dies and restarts empty.
type restartableBackend struct {
	mu    sync.Mutex
	inner *runtime.LocalBackend
}

func (b *restartableBackend) cur() *runtime.LocalBackend {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inner
}

// swap replaces the backend with a fresh one, as a restarted process
// that remembers nothing (engine state and replication positions gone).
func (b *restartableBackend) swap(nb *runtime.LocalBackend) {
	b.mu.Lock()
	b.inner = nb
	b.mu.Unlock()
}

func (b *restartableBackend) Kind() string { return "restartable" }
func (b *restartableBackend) CreateStream(name string, schema *stream.Schema) error {
	return b.cur().CreateStream(name, schema)
}
func (b *restartableBackend) DropStream(name string) error { return b.cur().DropStream(name) }
func (b *restartableBackend) StreamSchema(name string) (*stream.Schema, error) {
	return b.cur().StreamSchema(name)
}
func (b *restartableBackend) IngestBatchPrevalidated(name string, ts []stream.Tuple) error {
	return b.cur().IngestBatchPrevalidated(name, ts)
}
func (b *restartableBackend) Deploy(req runtime.DeployRequest) (runtime.BackendDeployment, error) {
	return b.cur().Deploy(req)
}
func (b *restartableBackend) Withdraw(id string) error { return b.cur().Withdraw(id) }
func (b *restartableBackend) Subscribe(id string) (runtime.BackendSubscription, error) {
	return b.cur().Subscribe(id)
}
func (b *restartableBackend) QueryCount() int { return b.cur().QueryCount() }
func (b *restartableBackend) Healthy() bool   { return b.cur().Healthy() }
func (b *restartableBackend) Flush() error    { return b.cur().Flush() }
func (b *restartableBackend) Close() error    { return b.cur().Close() }
func (b *restartableBackend) Replicate(name string, base uint64, reset bool, ts []stream.Tuple) (uint64, error) {
	return b.cur().Replicate(name, base, reset, ts)
}
func (b *restartableBackend) ReplicaStatus(name string) (uint64, error) {
	return b.cur().ReplicaStatus(name)
}

// TestTrimmedLogFollowerRestartResync: a follower restarts empty after
// the bounded replication log has trimmed (base > 0). The receiver
// refuses the base-ahead ship once, the shipper resyncs from
// ReplicaStatus, counts the trimmed prefix as the follower's gap and
// re-feeds the retained tail with the gap declared — instead of the
// pre-fix livelock where every ship bounced off the replica_gap check
// forever, inflating Gaps and never advancing the follower.
func TestTrimmedLogFollowerRestartResync(t *testing.T) {
	backends := []runtime.ShardBackend{
		&restartableBackend{inner: runtime.NewLocalBackend(dsms.NewEngine("r0"))},
		&restartableBackend{inner: runtime.NewLocalBackend(dsms.NewEngine("r1"))},
	}
	const logMax = 256
	rt := runtime.NewWithBackends("trim", runtime.Options{Replication: 2, ReplicationLog: logMax}, backends)
	defer rt.Close()
	if err := rt.CreateStream("s", testSchema()); err != nil {
		t.Fatal(err)
	}

	// Publish far past the log bound so the retained window slides:
	// after this, log base > 0 and the oldest tuples exist nowhere but
	// in the engines.
	const n1 = 4 * logMax
	publishChunks(t, rt, "s", cloneInput(replInput(n1)), 128, nil)
	flushWithin(t, rt, 15*time.Second)

	follower := followerShards(rt, "s")[0]
	fb := backends[follower].(*restartableBackend)

	// Kill the follower and restart it empty on the same slot. Gaps is
	// a cumulative per-slot counter (the first incarnation may already
	// have taken a gap if the publish burst outran its shipper), so
	// snapshot it here and assert on the restart's delta below.
	rt.FailShard(follower, errors.New("injected follower death"))
	gapsBefore := replicaLagOf(rt, "s", follower).Gaps
	fb.swap(runtime.NewLocalBackend(dsms.NewEngine("r-reborn")))
	if err := rt.ReadoptShard(follower); err != nil {
		t.Fatalf("readopt shard %d: %v", follower, err)
	}

	// More flow, then Flush: under the livelock this never returned
	// (the follower could not advance), under the fix the shipper
	// re-feeds the retained tail and catches up.
	const n2 = 300
	publishChunks(t, rt, "s", cloneInput(replInput(n2)), 100, nil)
	flushWithin(t, rt, 15*time.Second)

	lag := replicaLagOf(rt, "s", follower)
	if lag.Lag != 0 || lag.Paused {
		t.Fatalf("follower lag after Flush: %+v, want caught up and unpaused", lag)
	}
	gapDelta := lag.Gaps - gapsBefore
	if gapDelta == 0 {
		t.Fatal("restart took no gap: the log cannot have trimmed, test lost its premise")
	}
	if gapDelta >= n1+n2 {
		t.Fatalf("restart gap %d swallowed the whole flow of %d (resync never re-fed the retained tail)", gapDelta, n1+n2)
	}
	// Accounting identity: every published tuple was either re-fed to
	// the restarted engine or counted against this incarnation's gap,
	// and the follower's absolute applied position reached the log
	// head. The pre-fix livelock broke this visibly — Gaps grew by
	// base per retry tick and the applied position stayed at zero.
	applied, err := fb.ReplicaStatus("s")
	if err != nil {
		t.Fatal(err)
	}
	if seq := localSeqOf(t, fb.cur(), "s"); seq+gapDelta != n1+n2 || applied != n1+n2 {
		t.Fatalf("restarted follower sealed %d, applied %d, restart gap %d; want sealed+gap == %d and applied == %d",
			seq, applied, gapDelta, n1+n2, n1+n2)
	}
	checkInvariant(t, rt)
}

// replicaLagOf returns one follower's ReplicaLag entry for a stream
// (zero value if the follower has none).
func replicaLagOf(rt *runtime.Runtime, name string, shard int) runtime.ReplicaLag {
	for _, l := range rt.ReplicaLag(name) {
		if l.Shard == shard {
			return l
		}
	}
	return runtime.ReplicaLag{}
}

// localSeqOf reads the sealed sequence counter of a backend's engine.
func localSeqOf(t *testing.T, lb *runtime.LocalBackend, name string) uint64 {
	t.Helper()
	seq, err := lb.Engine().StreamSeq(name)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// fencedIngestBackend delays the engine ingest of drained batches and
// records whether a query-state export ever overlapped one: the
// migration fence must guarantee the paused primary's in-flight batch
// has fully landed before state is exported.
type fencedIngestBackend struct {
	*runtime.LocalBackend
	slow                 atomic.Bool
	inflight             atomic.Int32
	ingestStarted        chan struct{}
	startedOnce          sync.Once
	exportDuringInflight atomic.Bool
}

func (b *fencedIngestBackend) delayedIngest(name string, ts []stream.Tuple, ingest func() error) error {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	if b.slow.Load() {
		b.startedOnce.Do(func() { close(b.ingestStarted) })
		time.Sleep(200 * time.Millisecond)
	}
	return ingest()
}

func (b *fencedIngestBackend) IngestBatchPrevalidated(name string, ts []stream.Tuple) error {
	return b.delayedIngest(name, ts, func() error { return b.LocalBackend.IngestBatchPrevalidated(name, ts) })
}

// IngestBatchOwnedTraced is the path the shard worker actually takes
// (LocalBackend implements tracedIngester, and embedding surfaces it),
// so the delay must cover it too.
func (b *fencedIngestBackend) IngestBatchOwnedTraced(name string, ts []stream.Tuple, sp *telemetry.Span) error {
	return b.delayedIngest(name, ts, func() error { return b.LocalBackend.IngestBatchOwnedTraced(name, ts, sp) })
}

func (b *fencedIngestBackend) ExportQueryState(id string) (*dsms.QueryState, error) {
	if b.inflight.Load() > 0 {
		b.exportDuringInflight.Store(true)
	}
	return b.LocalBackend.ExportQueryState(id)
}

// TestMigrateQueryFencesInflightBatch publishes a batch whose engine
// ingest is artificially slow and migrates the query while that batch
// is mid-drain: MigrateQuery must wait the batch out (pause alone does
// not drain it) before flushing replication and exporting state, so
// the exported window never contains tuples the target has yet to
// apply. The golden comparison then proves no tuple was processed
// twice across the migration.
func TestMigrateQueryFencesInflightBatch(t *testing.T) {
	win := dsms.WindowSpec{Type: dsms.WindowTime, Size: 200, Step: 50}
	input := replInput(300)
	want := referenceEmissions(t, input, win)

	backends := []runtime.ShardBackend{
		&fencedIngestBackend{
			LocalBackend:  runtime.NewLocalBackend(dsms.NewEngine("m0")),
			ingestStarted: make(chan struct{}),
		},
		&fencedIngestBackend{
			LocalBackend:  runtime.NewLocalBackend(dsms.NewEngine("m1")),
			ingestStarted: make(chan struct{}),
		},
	}
	rt := runtime.NewWithBackends("fence", runtime.Options{Replication: 2}, backends)
	defer rt.Close()
	if err := rt.CreateStream("s", testSchema()); err != nil {
		t.Fatal(err)
	}
	dep, err := rt.Deploy(replAggGraph("s", win))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe(dep.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	primary := rt.ShardForStream("s")
	target := followerShards(rt, "s")[0]
	pb := backends[primary].(*fencedIngestBackend)

	// Steady prefix, fully settled.
	publishChunks(t, rt, "s", cloneInput(input[:200]), 50, nil)
	rt.Flush()

	// One slow batch: by the time MigrateQuery runs, the worker has
	// popped it and is stuck inside the engine ingest — exactly the
	// in-flight window the fence must cover.
	pb.slow.Store(true)
	if v, err := rt.PublishBatchVerdict("s", cloneInput(input[200:250])); err != nil || v.Accepted != 50 {
		t.Fatalf("slow batch: %+v, %v", v, err)
	}
	select {
	case <-pb.ingestStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("slow batch never reached the backend")
	}
	if err := rt.MigrateQuery(dep.ID, target); err != nil {
		t.Fatalf("migrate to %d: %v", target, err)
	}
	pb.slow.Store(false)
	if pb.exportDuringInflight.Load() {
		t.Fatal("query state exported while a drained batch was still ingesting: migration fence is broken")
	}

	publishChunks(t, rt, "s", cloneInput(input[250:]), 50, nil)
	rt.Flush()

	got := collectEmissions(t, sub, len(want))
	sameEmissions(t, got, want)
	checkInvariant(t, rt)
}
