package xacmlplus

import (
	"strings"
	"testing"

	"repro/internal/dsms"
	"repro/internal/expr"
)

func filterGraph(cond string) *dsms.QueryGraph {
	return dsms.NewQueryGraph("s", dsms.NewFilterBox(expr.MustParse(cond)))
}

func mapGraph(attrs ...string) *dsms.QueryGraph {
	return dsms.NewQueryGraph("s", dsms.NewMapBox(attrs...))
}

func aggGraph(typ dsms.WindowType, size, step int64, aggs ...string) *dsms.QueryGraph {
	specs := make([]dsms.AggSpec, 0, len(aggs))
	for _, a := range aggs {
		s, err := dsms.ParseAggSpec(a)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	return dsms.NewQueryGraph("s", dsms.NewAggregateBox(dsms.WindowSpec{Type: typ, Size: size, Step: step}, specs...))
}

func TestCheckFilterExample3(t *testing.T) {
	// Policy a > 8, user a > 5: PR.
	res, err := CheckGraphs(filterGraph("a > 8"), filterGraph("a > 5"))
	if err != nil {
		t.Fatalf("CheckGraphs: %v", err)
	}
	if res.Verdict != expr.VerdictPR || len(res.Warnings) != 1 {
		t.Errorf("verdict = %v, warnings = %v", res.Verdict, res.Warnings)
	}
	if res.Warnings[0].Operator != dsms.BoxFilter {
		t.Errorf("warning operator = %v", res.Warnings[0].Operator)
	}
	// Policy a < 4, user a > 5: NR.
	res, _ = CheckGraphs(filterGraph("a < 4"), filterGraph("a > 5"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("NR case = %v", res.Verdict)
	}
	// LTA case: policy a > 5, user a > 50: OK.
	res, _ = CheckGraphs(filterGraph("a > 5"), filterGraph("a > 50"))
	if res.Verdict != expr.VerdictOK || len(res.Warnings) != 0 {
		t.Errorf("OK case = %v %v", res.Verdict, res.Warnings)
	}
}

func TestCheckMapRules(t *testing.T) {
	// Disjoint sets: NR.
	res, _ := CheckGraphs(mapGraph("a", "b"), mapGraph("c"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("disjoint maps = %v", res.Verdict)
	}
	// User requests a withheld attribute: PR.
	res, _ = CheckGraphs(mapGraph("a", "b"), mapGraph("a", "c"))
	if res.Verdict != expr.VerdictPR {
		t.Errorf("partially withheld = %v", res.Verdict)
	}
	if !strings.Contains(res.Warnings[0].Detail, "c") {
		t.Errorf("detail should name the withheld attribute: %q", res.Warnings[0].Detail)
	}
	// User subset of policy: OK (user gets everything they asked for).
	res, _ = CheckGraphs(mapGraph("a", "b", "c"), mapGraph("a"))
	if res.Verdict != expr.VerdictOK {
		t.Errorf("subset = %v", res.Verdict)
	}
	// Equal sets: OK.
	res, _ = CheckGraphs(mapGraph("a", "b"), mapGraph("b", "a"))
	if res.Verdict != expr.VerdictOK {
		t.Errorf("equal sets = %v", res.Verdict)
	}
}

func TestCheckAggregateRules(t *testing.T) {
	// Rule 1: policy size > user size -> NR.
	res, _ := CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum"), aggGraph(dsms.WindowTuple, 3, 2, "a:sum"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("rule 1 = %v", res.Verdict)
	}
	// Rule 2: policy step > user step -> NR.
	res, _ = CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum"), aggGraph(dsms.WindowTuple, 5, 1, "a:sum"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("rule 2 = %v", res.Verdict)
	}
	// Rule 3: type mismatch -> NR.
	res, _ = CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum"), aggGraph(dsms.WindowTime, 5, 2, "a:sum"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("rule 3 = %v", res.Verdict)
	}
	// Rule 4: same attribute, different functions -> NR.
	res, _ = CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum"), aggGraph(dsms.WindowTuple, 5, 2, "a:avg"))
	if res.Verdict != expr.VerdictNR {
		t.Errorf("rule 4 = %v", res.Verdict)
	}
	// Rule 5: same attribute same function -> OK.
	res, _ = CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum", "b:avg"), aggGraph(dsms.WindowTuple, 10, 4, "a:sum"))
	if res.Verdict != expr.VerdictOK {
		t.Errorf("rule 5 = %v (%v)", res.Verdict, res.Warnings)
	}
	// Rule 6: user attribute missing from policy -> PR.
	res, _ = CheckGraphs(aggGraph(dsms.WindowTuple, 5, 2, "a:sum"), aggGraph(dsms.WindowTuple, 5, 2, "a:sum", "b:avg"))
	if res.Verdict != expr.VerdictPR {
		t.Errorf("rule 6 = %v", res.Verdict)
	}
}

func TestCheckNilAndMissingSides(t *testing.T) {
	res, err := CheckGraphs(nil, filterGraph("a > 1"))
	if err != nil || res.Verdict != expr.VerdictOK {
		t.Errorf("nil policy: (%v,%v)", res.Verdict, err)
	}
	res, err = CheckGraphs(filterGraph("a > 1"), nil)
	if err != nil || res.Verdict != expr.VerdictOK {
		t.Errorf("nil user: (%v,%v)", res.Verdict, err)
	}
	// Policy has a filter, user doesn't: no warning.
	res, _ = CheckGraphs(filterGraph("a > 1"), mapGraph("a"))
	if res.Verdict != expr.VerdictOK {
		t.Errorf("one-sided operators = %v", res.Verdict)
	}
}

func TestCheckCombinedWorstVerdict(t *testing.T) {
	// Map says PR, filter says NR: overall NR.
	p := dsms.NewQueryGraph("s",
		dsms.NewFilterBox(expr.MustParse("a < 4")),
		dsms.NewMapBox("a", "b"))
	u := dsms.NewQueryGraph("s",
		dsms.NewFilterBox(expr.MustParse("a > 5")),
		dsms.NewMapBox("a", "z"))
	res, err := CheckGraphs(p, u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != expr.VerdictNR {
		t.Errorf("worst verdict = %v", res.Verdict)
	}
	if len(res.Warnings) != 2 {
		t.Errorf("warnings = %v", res.Warnings)
	}
	// Warning strings render.
	for _, w := range res.Warnings {
		if w.String() == "" {
			t.Error("warning renders empty")
		}
	}
}

// TestCheckFig4Scenario: the paper's running example produces no
// warnings (the LTA refinement is fully compatible with the policy).
func TestCheckFig4Scenario(t *testing.T) {
	res, err := CheckGraphs(policyGraphFig1(), userGraphFig4a())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != expr.VerdictOK || len(res.Warnings) != 0 {
		t.Errorf("Fig 4 scenario: %v %v", res.Verdict, res.Warnings)
	}
}
