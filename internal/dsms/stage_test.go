package dsms

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

func stageSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "key", Type: stream.TypeString},
		stream.Field{Name: "i", Type: stream.TypeInt},
		stream.Field{Name: "d", Type: stream.TypeDouble},
		stream.Field{Name: "s", Type: stream.TypeString},
	)
}

// stageRows builds a position-stamped global row sequence (Seq = 1..n).
// With intDoubles, the double column holds integer values so float sums
// are exact under any association.
func stageRows(rng *rand.Rand, n int, intDoubles bool) []stream.Tuple {
	rows := make([]stream.Tuple, n)
	for i := range rows {
		d := float64(rng.Intn(2001) - 1000)
		if !intDoubles {
			d = float64(rng.Intn(2001)-1000) / 10 // one decimal: inexact in binary
		}
		rows[i] = stream.NewTuple(
			stream.StringValue(fmt.Sprintf("k%d", rng.Intn(7))),
			stream.IntValue(int64(rng.Intn(201)-100)),
			stream.DoubleValue(d),
			stream.StringValue(fmt.Sprintf("s%03d", rng.Intn(300))),
		)
		rows[i].Seq = uint64(i + 1)
		rows[i].ArrivalMillis = int64(1000 + i*3)
	}
	return rows
}

// runPartialPartition feeds one partition's rows (a position-ordered
// subsequence of the global sequence) through a partialAggOp in
// rng-drawn batches and returns the most advanced snapshot per window,
// exactly as the runtime merge stage retains them.
func runPartialPartition(t *testing.T, agg *Box, rows []stream.Tuple, rng *rand.Rand) map[int64]*WindowPartial {
	t.Helper()
	op, err := newPartialAggOp(agg, stageSchema())
	if err != nil {
		t.Fatal(err)
	}
	wins := make(map[int64]*WindowPartial)
	for off := 0; off < len(rows); {
		n := 1 + rng.Intn(8)
		if off+n > len(rows) {
			n = len(rows) - off
		}
		batch := rows[off : off+n]
		recs, err := op.process(batch, batch[len(batch)-1].Seq)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			part, _, isWM, err := op.cod.Decode(r)
			if err != nil {
				t.Fatal(err)
			}
			if isWM {
				continue
			}
			if prev := wins[part.Win]; prev == nil || part.Count > prev.Count {
				wins[part.Win] = part
			}
		}
		off += n
	}
	return wins
}

// splitRows deals the global sequence into nparts position-ordered
// partition subsequences.
func splitRows(rng *rand.Rand, rows []stream.Tuple, nparts int) [][]stream.Tuple {
	parts := make([][]stream.Tuple, nparts)
	for _, r := range rows {
		p := rng.Intn(nparts)
		parts[p] = append(parts[p], r)
	}
	return parts
}

func sameEmission(a, b stream.Tuple) bool {
	return a.Equal(b) && a.Seq == b.Seq && a.ArrivalMillis == b.ArrivalMillis
}

// TestPartialMergePermutationInvariance: for count, integer-valued
// sums/avgs, min, max, first and last, the merged global window is
// independent of the order partials are merged in — ties and
// provenance resolve by global position, not argument order.
func TestPartialMergePermutationInvariance(t *testing.T) {
	agg := NewAggregateBox(WindowSpec{Type: WindowTuple, Size: 9, Step: 4},
		AggSpec{Attr: "i", Func: AggCount},
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "d", Func: AggSum},
		AggSpec{Attr: "d", Func: AggAvg},
		AggSpec{Attr: "i", Func: AggMin},
		AggSpec{Attr: "d", Func: AggMax},
		AggSpec{Attr: "s", Func: AggMin},
		AggSpec{Attr: "s", Func: AggFirstVal},
		AggSpec{Attr: "d", Func: AggLastVal})
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nparts := 2 + rng.Intn(3)
		rows := stageRows(rng, 150, true)
		byPart := splitRows(rng, rows, nparts)
		wins := make([]map[int64]*WindowPartial, nparts)
		for p := range byPart {
			wins[p] = runPartialPartition(t, agg, byPart[p], rng)
		}
		cod, err := NewPartialCodec(agg.Aggs, stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k*agg.Window.Step+agg.Window.Size <= int64(len(rows)); k++ {
			parts := make([]*WindowPartial, nparts)
			for p := range wins {
				parts[p] = wins[p][k]
			}
			base, err := cod.Merge(parts)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				t.Fatalf("seed %d window %d: no partition contributed", seed, k)
			}
			want, err := cod.Finish(base)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5; trial++ {
				perm := rng.Perm(nparts)
				shuffled := make([]*WindowPartial, nparts)
				for i, p := range perm {
					shuffled[i] = parts[p]
				}
				m, err := cod.Merge(shuffled)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cod.Finish(m)
				if err != nil {
					t.Fatal(err)
				}
				if !sameEmission(got, want) {
					t.Fatalf("seed %d window %d perm %v: %v != %v", seed, k, perm, got, want)
				}
			}
		}
	}
}

// TestPartialMergeFloatSumOrder pins the float-sum contract: Merge adds
// per-partition sums left to right in argument order, so merging in
// partition order is deterministic and reproducible — while a permuted
// order is allowed to differ in the last bits (which is exactly why the
// runtime merge stage always merges in partition order).
func TestPartialMergeFloatSumOrder(t *testing.T) {
	agg := NewAggregateBox(WindowSpec{Type: WindowTuple, Size: 30, Step: 30},
		AggSpec{Attr: "d", Func: AggSum})
	rng := rand.New(rand.NewSource(99))
	rows := stageRows(rng, 30, false)
	byPart := splitRows(rng, rows, 3)
	parts := make([]*WindowPartial, 3)
	for p := range byPart {
		parts[p] = runPartialPartition(t, agg, byPart[p], rng)[0]
		if parts[p] == nil {
			t.Fatalf("partition %d holds no rows for window 0; reseed", p)
		}
	}
	cod, err := NewPartialCodec(agg.Aggs, stageSchema())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cod.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cod.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := parts[0].Sums[0] + parts[1].Sums[0]
	wantSum += parts[2].Sums[0]
	if m1.Sums[0] != wantSum || m2.Sums[0] != wantSum {
		t.Fatalf("partition-order merge not left-to-right: got %x and %x, want %x",
			m1.Sums[0], m2.Sums[0], wantSum)
	}
	t1, err := cod.Finish(m1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cod.Finish(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEmission(t1, t2) {
		t.Fatalf("partition-order merge is not reproducible: %v != %v", t1, t2)
	}
}

// TestPartialMergeDegenerateCases: an all-nil merge is an
// unmaterialized window (nil, no error, no emission), nil entries are
// skipped, and a single contributing partition round-trips through
// Merge bit-identically — the single-shard degenerate of global
// re-aggregation.
func TestPartialMergeDegenerateCases(t *testing.T) {
	agg := NewAggregateBox(WindowSpec{Type: WindowTuple, Size: 6, Step: 3},
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "d", Func: AggAvg},
		AggSpec{Attr: "s", Func: AggMax},
		AggSpec{Attr: "key", Func: AggLastVal})
	cod, err := NewPartialCodec(agg.Aggs, stageSchema())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := cod.Merge(nil); err != nil || m != nil {
		t.Fatalf("Merge(nil) = %v, %v; want nil, nil", m, err)
	}
	if m, err := cod.Merge([]*WindowPartial{nil, nil, nil}); err != nil || m != nil {
		t.Fatalf("Merge(all nil) = %v, %v; want nil, nil", m, err)
	}

	rng := rand.New(rand.NewSource(7))
	rows := stageRows(rng, 40, true)
	wins := runPartialPartition(t, agg, rows, rng)
	for k := int64(0); k*3+6 <= 40; k++ {
		p := wins[k]
		if p == nil {
			t.Fatalf("window %d missing", k)
		}
		want, err := cod.Finish(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cod.Merge([]*WindowPartial{nil, p, nil})
		if err != nil {
			t.Fatal(err)
		}
		got, err := cod.Finish(m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEmission(got, want) {
			t.Fatalf("window %d: single-partition merge altered the result: %v != %v", k, got, want)
		}
	}
}

// TestPartialSingleShardMatchesDriver: one partition holding the whole
// sequence must reproduce the real aggregate operator's emissions
// (values, Seq, arrival) when its completed-window snapshots are
// finished directly — the algebra's identity law against the engine's
// own scan.
func TestPartialSingleShardMatchesDriver(t *testing.T) {
	agg := NewAggregateBox(WindowSpec{Type: WindowTuple, Size: 8, Step: 3},
		AggSpec{Attr: "i", Func: AggCount},
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "d", Func: AggAvg},
		AggSpec{Attr: "i", Func: AggMin},
		AggSpec{Attr: "d", Func: AggMax},
		AggSpec{Attr: "s", Func: AggFirstVal},
		AggSpec{Attr: "s", Func: AggLastVal})
	rng := rand.New(rand.NewSource(11))
	rows := stageRows(rng, 120, true)

	drv, err := NewAggDriver(agg, stageSchema())
	if err != nil {
		t.Fatal(err)
	}
	want, err := drv.Push(rows)
	if err != nil {
		t.Fatal(err)
	}

	wins := runPartialPartition(t, agg, rows, rng)
	cod, err := NewPartialCodec(agg.Aggs, stageSchema())
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	for k := int64(0); k*agg.Window.Step+agg.Window.Size <= int64(len(rows)); k++ {
		m, err := cod.Merge([]*WindowPartial{wins[k]})
		if err != nil {
			t.Fatal(err)
		}
		out, err := cod.Finish(m)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out)
	}
	if len(got) != len(want) {
		t.Fatalf("partial path emitted %d windows, driver %d", len(got), len(want))
	}
	for i := range want {
		if !sameEmission(got[i], want[i]) {
			t.Fatalf("window %d: partial %v != driver %v", i, got[i], want[i])
		}
	}
}

// TestStageStateRoundTrip pins the migration/failover contract for
// stage operators: exporting mid-stream and importing into a fresh
// operator must continue the record stream exactly where the original
// would have.
func TestStageStateRoundTrip(t *testing.T) {
	agg := NewAggregateBox(WindowSpec{Type: WindowTuple, Size: 10, Step: 4},
		AggSpec{Attr: "i", Func: AggSum},
		AggSpec{Attr: "d", Func: AggMax},
		AggSpec{Attr: "s", Func: AggFirstVal})
	rng := rand.New(rand.NewSource(23))
	rows := stageRows(rng, 100, true)

	run := func(op stageOp, batches [][]stream.Tuple) []stream.Tuple {
		var out []stream.Tuple
		for _, b := range batches {
			recs, err := op.process(b, b[len(b)-1].Seq)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, recs...)
		}
		return out
	}
	var batches [][]stream.Tuple
	for off := 0; off < len(rows); off += 10 {
		batches = append(batches, rows[off:off+10])
	}

	t.Run("partial", func(t *testing.T) {
		ref, err := newPartialAggOp(agg, stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		want := run(ref, batches)

		a, err := newPartialAggOp(agg, stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		got := run(a, batches[:5])
		b, err := newPartialAggOp(agg, stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		if err := b.importState(a.exportState()); err != nil {
			t.Fatal(err)
		}
		got = append(got, run(b, batches[5:])...)
		if len(got) != len(want) {
			t.Fatalf("round-trip emitted %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !sameEmission(got[i], want[i]) {
				t.Fatalf("record %d: %v != %v", i, got[i], want[i])
			}
		}
	})

	t.Run("relay", func(t *testing.T) {
		ref, err := newRelayOp(stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		want := run(ref, batches)

		a, err := newRelayOp(stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		got := run(a, batches[:5])
		b, err := newRelayOp(stageSchema())
		if err != nil {
			t.Fatal(err)
		}
		if err := b.importState(a.exportState()); err != nil {
			t.Fatal(err)
		}
		got = append(got, run(b, batches[5:])...)
		if len(got) != len(want) {
			t.Fatalf("round-trip emitted %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !sameEmission(got[i], want[i]) {
				t.Fatalf("record %d: %v != %v", i, got[i], want[i])
			}
		}
	})
}
