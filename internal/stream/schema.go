// Package stream defines the data model shared by every layer of the
// eXACML+ reproduction: typed schemas, tuples, and append-only stream
// metadata following the Aurora model, in which a data stream is an
// unbounded, append-only sequence of tuples that all conform to a single
// schema.
package stream

import (
	"fmt"
	"sort"
	"strings"
)

// FieldType enumerates the primitive types a stream attribute may take.
// The set mirrors the StreamBase/Aurora type system used by the paper's
// weather example: timestamps, doubles, ints, strings and bools.
type FieldType int

const (
	// TypeInvalid is the zero FieldType and never valid in a schema.
	TypeInvalid FieldType = iota
	// TypeInt is a 64-bit signed integer attribute.
	TypeInt
	// TypeDouble is a 64-bit IEEE-754 floating point attribute.
	TypeDouble
	// TypeString is a UTF-8 string attribute.
	TypeString
	// TypeBool is a boolean attribute.
	TypeBool
	// TypeTimestamp is a point in time with millisecond resolution,
	// stored as Unix milliseconds.
	TypeTimestamp
)

// String returns the StreamSQL spelling of the type.
func (t FieldType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeDouble:
		return "double"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	case TypeTimestamp:
		return "timestamp"
	default:
		return "invalid"
	}
}

// ParseFieldType converts a StreamSQL type name into a FieldType.
func ParseFieldType(s string) (FieldType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "long":
		return TypeInt, nil
	case "double", "float", "real":
		return TypeDouble, nil
	case "string", "varchar", "text":
		return TypeString, nil
	case "bool", "boolean":
		return TypeBool, nil
	case "timestamp", "time":
		return TypeTimestamp, nil
	default:
		return TypeInvalid, fmt.Errorf("stream: unknown field type %q", s)
	}
}

// IsNumeric reports whether values of the type support ordering and
// arithmetic aggregation (sum, avg, ...).
func (t FieldType) IsNumeric() bool {
	return t == TypeInt || t == TypeDouble || t == TypeTimestamp
}

// Field is a single named, typed attribute of a schema.
type Field struct {
	Name string
	Type FieldType
}

// Schema is an ordered list of uniquely named fields. A Schema is
// immutable after construction; all mutating helpers return new schemas.
type Schema struct {
	fields []Field
	index  map[string]int // lower-cased name -> position
}

// NewSchema builds a schema from the given fields. Field names are
// case-insensitive and must be unique and non-empty; types must be valid.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: make([]Field, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream: field %d has empty name", i)
		}
		if f.Type == TypeInvalid {
			return nil, fmt.Errorf("stream: field %q has invalid type", f.Name)
		}
		key := strings.ToLower(f.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("stream: duplicate field %q", f.Name)
		}
		s.index[key] = i
		s.fields[i] = f
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error. Intended for tests and
// static schema literals.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// FieldNames returns the field names in declaration order.
func (s *Schema) FieldNames() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Lookup returns the position and type of the named field
// (case-insensitive). ok is false if the field does not exist.
func (s *Schema) Lookup(name string) (pos int, typ FieldType, ok bool) {
	i, ok := s.index[strings.ToLower(name)]
	if !ok {
		return -1, TypeInvalid, false
	}
	return i, s.fields[i].Type, true
}

// Has reports whether the schema contains the named field.
func (s *Schema) Has(name string) bool {
	_, _, ok := s.Lookup(name)
	return ok
}

// Project returns a new schema containing only the named fields, in the
// order given. It fails if any name is unknown.
func (s *Schema) Project(names []string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i, _, ok := s.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("stream: projection references unknown field %q", n)
		}
		fields = append(fields, s.fields[i])
	}
	return NewSchema(fields...)
}

// Equal reports whether two schemas have the same fields (names compared
// case-insensitively) in the same order with the same types.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if !strings.EqualFold(s.fields[i].Name, o.fields[i].Name) ||
			s.fields[i].Type != o.fields[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// SortedNames returns the field names sorted lexicographically (lower
// case). Useful for canonical comparisons in tests.
func (s *Schema) SortedNames() []string {
	out := make([]string, 0, len(s.fields))
	for _, f := range s.fields {
		out = append(out, strings.ToLower(f.Name))
	}
	sort.Strings(out)
	return out
}
