// Package governor closes the accountability loop the paper leaves as
// future work (§6: relaxing the trusted-cloud model with accountability
// mechanisms): it subscribes to the hash-chained audit log every PDP
// decision is recorded in (internal/audit), scores subjects by the
// abuse signals accumulating against them — denied access requests,
// NR/PR analysis violations, withdrawals — with an exponential decay so
// old sins fade, and when a subject's score crosses a threshold it
// demotes that subject's streams: their priority class drops and their
// token-bucket quota tightens, live, through Runtime.Reconfigure. After
// a cooldown with no further abuse the original configuration is
// restored. Every demotion and restore is itself appended to the audit
// chain as a first-class "govern" event, so the governor's own actions
// are as accountable as the decisions that triggered them.
//
// The governor turns the static admission control of the ingest runtime
// into a self-defending one: a flooding subject that also accumulates
// denials is squeezed to a trickle at the admission door while clean
// subjects keep their configured service level, and — because
// Reconfigure pushes the new state to remote dsmsd shards — the
// squeeze follows the subject even onto shards it publishes to
// directly. See docs/ACCOUNTABILITY.md for the end-to-end story.
package governor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

// KindGovern is the audit Event.Kind under which the governor records
// its demotions and restores.
const KindGovern = "govern"

// AdmissionControl is the runtime surface the governor drives; the
// sharded runtime implements it (Runtime.StreamAdmission /
// Runtime.Reconfigure), as does core.Framework.
type AdmissionControl interface {
	// StreamAdmission reports a stream's current class/quota.
	StreamAdmission(name string) (runtime.StreamConfig, error)
	// Reconfigure atomically swaps a stream's class/quota, returning
	// the previous configuration.
	Reconfigure(name string, cfg runtime.StreamConfig) (runtime.StreamConfig, error)
}

// Config tunes the governor. The zero value enables sane defaults.
type Config struct {
	// Threshold is the badness score at which a subject's streams are
	// demoted (default 5 — five fresh denials, or two-and-a-half NR/PR
	// violations).
	Threshold float64
	// HalfLife is the decay half-life of a subject's score: an event's
	// weight halves every HalfLife (default 30s). This is the
	// "decay-weighted sliding window" — events never leave the score
	// abruptly, they fade.
	HalfLife time.Duration
	// Cooldown is how long a demotion lasts after the subject's last
	// scored event (default 1m; further abuse while demoted restarts
	// it).
	Cooldown time.Duration
	// DemoteClass is the priority class demoted streams are moved to
	// (default runtime.BestEffort; a stream already below it keeps its
	// class).
	DemoteClass runtime.Class
	// DemoteRate / DemoteBurst is the token-bucket quota imposed while
	// demoted (default 100 tuples/s, burst = one second of rate). A
	// stream whose own quota is already tighter keeps it.
	DemoteRate  float64
	DemoteBurst int
	// DenyWeight, ViolationWeight and WithdrawWeight score one denied
	// access request, one NR/PR-violating request and one withdrawal
	// (a grant killed by a policy change; the PEP records one
	// "withdraw" event per affected subject/stream). Defaults 1, 2, 1.
	DenyWeight      float64
	ViolationWeight float64
	WithdrawWeight  float64
	// TickInterval is the period of the background pass that restores
	// expired demotions (default Cooldown/4, at most 1s). Negative
	// disables the goroutine; Tick must then be driven by the caller
	// (tests, experiments).
	TickInterval time.Duration
	// Bindings declares subject→stream ownership up front, exactly like
	// calling Bind for each entry after New. Declaring them in the
	// config matters for durable boot: Replay re-applies a recovered
	// demotion only to streams the subject is bound to, so the bindings
	// must exist before the replay runs.
	Bindings map[string][]string
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.DemoteRate <= 0 {
		c.DemoteRate = 100
	}
	if c.DemoteBurst <= 0 {
		c.DemoteBurst = int(c.DemoteRate)
	}
	if c.DenyWeight <= 0 {
		c.DenyWeight = 1
	}
	if c.ViolationWeight <= 0 {
		c.ViolationWeight = 2
	}
	if c.WithdrawWeight <= 0 {
		c.WithdrawWeight = 1
	}
	if c.TickInterval == 0 {
		c.TickInterval = c.Cooldown / 4
		if c.TickInterval > time.Second {
			c.TickInterval = time.Second
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// subjectState is one subject's decayed score and demotion status.
type subjectState struct {
	score   float64
	last    time.Time // when score was last decayed
	demoted bool
	since   time.Time // demotion start (for stats)
	lastBad time.Time // last scored event (cooldown anchor)
	// saved holds the pre-demotion config per stream, restored on
	// cooldown expiry.
	saved map[string]runtime.StreamConfig
}

// decayTo applies exponential decay up to now: the score halves every
// half-life.
func (s *subjectState) decayTo(now time.Time, halfLife time.Duration) {
	if dt := now.Sub(s.last); dt > 0 {
		s.score *= math.Exp2(-float64(dt) / float64(halfLife))
	}
	s.last = now
}

// Governor watches an audit log and governs a runtime's admission
// state. Create one with New, declare subject→stream ownership with
// Bind, and Close it when done.
type Governor struct {
	cfg Config
	ac  AdmissionControl
	log *audit.Log

	mu       sync.Mutex
	subjects map[string]*subjectState
	bindings map[string][]string

	events uint64 // scored events; guarded by mu
	// demotions/restores are atomic: they are bumped while applying
	// reconfigurations outside mu.
	demotions atomic.Uint64
	restores  atomic.Uint64

	cancel  func()
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once
}

// New wires a governor to an admission-control surface and an audit
// log, and (unless cfg.TickInterval < 0) starts the background restore
// pass. The governor starts observing the log immediately; bind
// subjects to their streams before their traffic matters.
func New(ac AdmissionControl, log *audit.Log, cfg Config) *Governor {
	g := &Governor{
		cfg:      cfg.withDefaults(),
		ac:       ac,
		log:      log,
		subjects: map[string]*subjectState{},
		bindings: map[string][]string{},
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	for subj, streams := range g.cfg.Bindings {
		key := strings.ToLower(subj)
		g.bindings[key] = append(g.bindings[key], streams...)
	}
	g.cancel = log.Observe(g.onEvent)
	if g.cfg.TickInterval > 0 {
		go g.run()
	} else {
		close(g.stopped)
	}
	return g
}

// Bind declares that the given streams belong to subject: they are what
// the governor demotes when the subject's score crosses the threshold.
// Binding is additive and may happen at any time.
func (g *Governor) Bind(subject string, streams ...string) {
	key := strings.ToLower(subject)
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range streams {
		g.bindings[key] = append(g.bindings[key], s)
	}
}

// ParseBindings reads the CLI form of subject→stream bindings:
// comma-separated "subject=stream" pairs where several streams are
// joined with "+", e.g. "mallory=gps,noisy=weather+gps".
func ParseBindings(s string) (map[string][]string, error) {
	out := map[string][]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		subj, streams, ok := strings.Cut(part, "=")
		subj = strings.TrimSpace(subj)
		if !ok || subj == "" || strings.TrimSpace(streams) == "" {
			return nil, fmt.Errorf("governor: binding %q is not subject=stream[+stream...]", part)
		}
		for _, st := range strings.Split(streams, "+") {
			st = strings.TrimSpace(st)
			if st == "" {
				return nil, fmt.Errorf("governor: binding %q names an empty stream", part)
			}
			out[strings.ToLower(subj)] = append(out[strings.ToLower(subj)], st)
		}
	}
	return out, nil
}

// Close detaches the governor from the audit log and stops the
// background pass. Demotions in force are left in force — the operator
// (or a successor governor) decides whether to restore them.
func (g *Governor) Close() {
	g.once.Do(func() {
		g.cancel()
		close(g.stop)
	})
	<-g.stopped
}

func (g *Governor) run() {
	defer close(g.stopped)
	t := time.NewTicker(g.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.Tick()
		}
	}
}

// weight scores one audit event; 0 means the event is not an abuse
// signal.
func (g *Governor) weight(e audit.Event) float64 {
	switch e.Kind {
	case "access":
		switch {
		case e.Decision == "Deny":
			return g.cfg.DenyWeight
		case e.Verdict == "PR" || e.Verdict == "NR":
			return g.cfg.ViolationWeight
		}
	case "withdraw":
		return g.cfg.WithdrawWeight
	}
	return 0
}

// demoteAction is one stream reconfiguration decided under the lock
// and applied outside it.
type demoteAction struct {
	stream  string
	old     runtime.StreamConfig
	cfg     runtime.StreamConfig
	skipErr error // StreamAdmission failed; record and skip
}

// onEvent is the audit-log observer: it scores the event against its
// subject and demotes the subject's streams when the threshold is
// crossed. It runs on the appending goroutine, so scoring is
// synchronous with the decision being recorded. The reconfigurations
// themselves (which may involve remote RPCs) are applied after the
// governor lock is released, so a slow shard delays only the offending
// request's append, not every other subject's scoring.
func (g *Governor) onEvent(e audit.Event) {
	// The governor's own govern events must not feed back into scores;
	// filtered before the lock because appending them (below) re-enters
	// this observer on the same goroutine.
	if e.Kind == KindGovern {
		return
	}
	w := g.weight(e)
	if w == 0 || e.Subject == "" {
		return
	}
	now := g.cfg.Clock()
	subject := strings.ToLower(e.Subject)
	g.mu.Lock()
	s := g.subject(subject)
	s.decayTo(now, g.cfg.HalfLife)
	s.score += w
	s.lastBad = now
	g.events++
	if s.demoted || s.score < g.cfg.Threshold || len(g.bindings[subject]) == 0 {
		g.mu.Unlock()
		return
	}
	// Decide the demotion under the lock: mark the subject demoted and
	// snapshot the pre-demotion configs (StreamAdmission is a local
	// lookup), so a concurrent Tick sees a complete saved map.
	s.demoted = true
	s.since = now
	score := s.score
	s.saved = map[string]runtime.StreamConfig{}
	acts := make([]demoteAction, 0, len(g.bindings[subject]))
	for _, stream := range g.bindings[subject] {
		old, err := g.ac.StreamAdmission(stream)
		if err != nil {
			acts = append(acts, demoteAction{stream: stream, skipErr: err})
			continue
		}
		s.saved[stream] = old
		acts = append(acts, demoteAction{stream: stream, old: old, cfg: g.demotedConfig(old)})
	}
	g.mu.Unlock()
	g.applyDemotion(subject, score, acts)
}

func (g *Governor) subject(name string) *subjectState {
	key := strings.ToLower(name)
	s, ok := g.subjects[key]
	if !ok {
		s = &subjectState{last: g.cfg.Clock()}
		g.subjects[key] = s
	}
	return s
}

// applyDemotion performs the decided reconfigurations and records each
// as a govern event; runs WITHOUT g.mu. Streams that fail to
// reconfigure (e.g. dropped meanwhile) are recorded and skipped.
func (g *Governor) applyDemotion(subject string, score float64, acts []demoteAction) {
	for _, a := range acts {
		if a.skipErr != nil {
			g.govern(subject, a.stream, "demote", fmt.Sprintf("skipped: %v", a.skipErr))
			continue
		}
		if _, err := g.ac.Reconfigure(a.stream, a.cfg); err != nil {
			g.govern(subject, a.stream, "demote", fmt.Sprintf("failed: %v", err))
			continue
		}
		g.demotions.Add(1)
		g.govern(subject, a.stream, "demote", fmt.Sprintf(
			"score %.2f >= threshold %.2f: class %s -> %s, quota %s -> %s; cooldown %v",
			score, g.cfg.Threshold, a.old.Class, a.cfg.Class,
			quotaString(a.old), quotaString(a.cfg), g.cfg.Cooldown))
	}
}

// demotedConfig derives the demoted admission state from the current
// one, never loosening: the class only goes down, the quota only
// tightens.
func (g *Governor) demotedConfig(old runtime.StreamConfig) runtime.StreamConfig {
	cfg := runtime.StreamConfig{
		Class: g.cfg.DemoteClass,
		Rate:  g.cfg.DemoteRate,
		Burst: g.cfg.DemoteBurst,
	}
	if old.Class < cfg.Class {
		cfg.Class = old.Class
	}
	if old.Rate > 0 && old.Rate < cfg.Rate {
		cfg.Rate, cfg.Burst = old.Rate, old.Burst
	}
	return cfg
}

// Tick decays scores and restores demotions whose cooldown has expired
// (no scored event for at least Config.Cooldown). The background
// goroutine calls it every TickInterval; tests and experiments may call
// it directly. Like demotion, the restore is decided under the lock
// and its reconfigurations applied outside it.
func (g *Governor) Tick() {
	now := g.cfg.Clock()
	type restoreAction struct {
		subject string
		saved   map[string]runtime.StreamConfig
	}
	var acts []restoreAction
	g.mu.Lock()
	for subject, s := range g.subjects {
		s.decayTo(now, g.cfg.HalfLife)
		if s.demoted && now.Sub(s.lastBad) >= g.cfg.Cooldown {
			acts = append(acts, restoreAction{subject: subject, saved: s.saved})
			s.demoted = false
			s.saved = nil
			s.score = 0 // a restored subject starts clean
		}
		if !s.demoted && s.score < 1e-3 {
			delete(g.subjects, subject) // fully faded; stop tracking
		}
	}
	g.mu.Unlock()
	for _, a := range acts {
		streams := make([]string, 0, len(a.saved))
		for stream := range a.saved {
			streams = append(streams, stream)
		}
		sort.Strings(streams)
		for _, stream := range streams {
			old := a.saved[stream]
			if _, err := g.ac.Reconfigure(stream, old); err != nil {
				g.govern(a.subject, stream, "restore", fmt.Sprintf("failed: %v", err))
				continue
			}
			g.restores.Add(1)
			g.govern(a.subject, stream, "restore", fmt.Sprintf(
				"cooldown %v elapsed: class %s, quota %s restored",
				g.cfg.Cooldown, old.Class, quotaString(old)))
		}
	}
}

// ReplayStats summarizes a boot-time audit replay.
type ReplayStats struct {
	// Scored is the number of abuse signals re-scored from the chain.
	Scored int `json:"scored"`
	// Redemoted counts demotions still in force at boot that were
	// re-applied to the live admission state.
	Redemoted int `json:"redemoted"`
	// Expired counts demotions whose cooldown lapsed while the node was
	// down; their streams keep the base configuration the catalog
	// restored.
	Expired int `json:"expired"`
}

// Replay re-derives the governor's state from a recovered audit chain:
// subject scores (decayed from the persisted event times, NOT from
// wall-clock-at-boot), active demotions and their cooldown anchors.
// Demotions whose cooldown is still running are re-applied to the
// bound streams through Reconfigure — the streams' current admission
// state (the catalog-restored base configuration) is saved as the
// restore target, so the eventual cooldown restore lands on the right
// config — and each re-application is itself recorded as a "govern"
// event on the chain. Demotions that expired during the downtime are
// simply not re-applied (the catalog already restored the base
// config). Replay must run at boot, before live traffic is scored.
func (g *Governor) Replay(events []audit.Event) ReplayStats {
	var st ReplayStats
	g.mu.Lock()
	for _, e := range events {
		subject := strings.ToLower(e.Subject)
		if e.Kind == KindGovern {
			if subject == "" {
				continue
			}
			s := g.subject(subject)
			switch e.Action {
			case "demote":
				s.demoted = true
				s.since = time.UnixMilli(e.Time)
			case "restore":
				s.demoted = false
				s.saved = nil
				s.score = 0
			}
			continue
		}
		w := g.weight(e)
		if w == 0 || subject == "" {
			continue
		}
		t := time.UnixMilli(e.Time)
		s := g.subject(subject)
		s.decayTo(t, g.cfg.HalfLife)
		s.score += w
		s.lastBad = t
		g.events++
		st.Scored++
	}
	// Settle to now: decay every score to boot time and decide each
	// in-force demotion's fate from its persisted cooldown anchor.
	now := g.cfg.Clock()
	type redemote struct {
		subject   string
		s         *subjectState
		remaining time.Duration
		acts      []demoteAction
	}
	var acts []redemote
	for subject, s := range g.subjects {
		s.decayTo(now, g.cfg.HalfLife)
		if !s.demoted {
			if s.score < 1e-3 {
				delete(g.subjects, subject)
			}
			continue
		}
		if now.Sub(s.lastBad) >= g.cfg.Cooldown {
			// The cooldown ran out while the node was down: the stream
			// keeps the base config the catalog restored; nothing to undo.
			s.demoted = false
			s.saved = nil
			s.score = 0
			st.Expired++
			continue
		}
		rd := redemote{subject: subject, s: s, remaining: g.cfg.Cooldown - now.Sub(s.lastBad)}
		s.saved = map[string]runtime.StreamConfig{}
		for _, stream := range g.bindings[subject] {
			old, err := g.ac.StreamAdmission(stream)
			if err != nil {
				rd.acts = append(rd.acts, demoteAction{stream: stream, skipErr: err})
				continue
			}
			s.saved[stream] = old
			rd.acts = append(rd.acts, demoteAction{stream: stream, old: old, cfg: g.demotedConfig(old)})
		}
		acts = append(acts, rd)
		st.Redemoted++
	}
	g.mu.Unlock()
	for _, rd := range acts {
		for _, a := range rd.acts {
			if a.skipErr != nil {
				g.govern(rd.subject, a.stream, "demote", fmt.Sprintf("recovered: skipped: %v", a.skipErr))
				continue
			}
			if _, err := g.ac.Reconfigure(a.stream, a.cfg); err != nil {
				g.govern(rd.subject, a.stream, "demote", fmt.Sprintf("recovered: failed: %v", err))
				continue
			}
			g.demotions.Add(1)
			g.govern(rd.subject, a.stream, "demote", fmt.Sprintf(
				"recovered: demotion re-applied after restart: class %s -> %s, quota %s -> %s; remaining cooldown %v",
				a.old.Class, a.cfg.Class, quotaString(a.old), quotaString(a.cfg),
				rd.remaining.Round(time.Millisecond)))
		}
	}
	return st
}

// govern appends one governor decision to the audit chain.
func (g *Governor) govern(subject, stream, action, detail string) {
	_, _ = g.log.Append(audit.Event{
		Kind:     KindGovern,
		Subject:  subject,
		Resource: stream,
		Action:   action,
		Detail:   detail,
	})
}

func quotaString(cfg runtime.StreamConfig) string {
	if cfg.Rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f/s:%d", cfg.Rate, cfg.Burst)
}

// SubjectStatus is one subject's row in Stats.
type SubjectStatus struct {
	Subject string  `json:"subject"`
	Score   float64 `json:"score"`
	Demoted bool    `json:"demoted"`
	// DemotedForMillis is how long the subject has been demoted (0 when
	// not demoted).
	DemotedForMillis int64 `json:"demoted_for_millis,omitempty"`
	// Streams are the subject's bound streams.
	Streams []string `json:"streams,omitempty"`
}

// Stats is a point-in-time snapshot of the governor.
type Stats struct {
	Threshold float64         `json:"threshold"`
	Subjects  []SubjectStatus `json:"subjects,omitempty"`
	Events    uint64          `json:"events"`
	Demotions uint64          `json:"demotions"`
	Restores  uint64          `json:"restores"`
}

// String renders the snapshot as an aligned table.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "governor: threshold %.2f, %d scored event(s), %d demotion(s), %d restore(s)\n",
		st.Threshold, st.Events, st.Demotions, st.Restores)
	if len(st.Subjects) == 0 {
		b.WriteString("no tracked subjects\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %-10s %-10s %-14s %s\n", "subject", "score", "demoted", "for", "streams")
	for _, s := range st.Subjects {
		demoted, dur := "-", "-"
		if s.Demoted {
			demoted = "yes"
			dur = (time.Duration(s.DemotedForMillis) * time.Millisecond).Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-16s %-10.2f %-10s %-14s %s\n",
			s.Subject, s.Score, demoted, dur, strings.Join(s.Streams, ","))
	}
	return b.String()
}

// EnableTelemetry exports the governor's lifetime counters and subject
// gauges on reg at scrape time (no hot-path cost: the exposition reads
// the same snapshot Stats serves).
func (g *Governor) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCollector(func(ga *telemetry.Gather) {
		st := g.Stats()
		ga.Counter("exacml_governor_events_total",
			"Abuse signals the governor has scored from the audit chain.", st.Events)
		ga.Counter("exacml_governor_demotions_total",
			"Admission demotions the governor applied.", st.Demotions)
		ga.Counter("exacml_governor_restores_total",
			"Admission restores the governor applied after cooldown.", st.Restores)
		ga.Gauge("exacml_governor_threshold",
			"Badness score at which a subject's streams are demoted.", st.Threshold)
		demoted := 0
		for _, s := range st.Subjects {
			if s.Demoted {
				demoted++
			}
		}
		ga.Gauge("exacml_governor_subjects",
			"Subjects the governor currently tracks.", float64(len(st.Subjects)))
		ga.Gauge("exacml_governor_demoted_subjects",
			"Tracked subjects currently demoted.", float64(demoted))
	})
}

// Stats snapshots the governor's subjects (scores decayed to now) and
// lifetime counters.
func (g *Governor) Stats() Stats {
	now := g.cfg.Clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Threshold: g.cfg.Threshold,
		Events:    g.events,
		Demotions: g.demotions.Load(),
		Restores:  g.restores.Load(),
	}
	for subject, s := range g.subjects {
		s.decayTo(now, g.cfg.HalfLife)
		row := SubjectStatus{
			Subject: subject,
			Score:   s.score,
			Demoted: s.demoted,
			Streams: append([]string(nil), g.bindings[subject]...),
		}
		if s.demoted {
			row.DemotedForMillis = now.Sub(s.since).Milliseconds()
		}
		st.Subjects = append(st.Subjects, row)
	}
	sort.Slice(st.Subjects, func(i, j int) bool { return st.Subjects[i].Subject < st.Subjects[j].Subject })
	return st
}
