package dsms

import (
	"fmt"
	"strings"

	"repro/internal/stream"
)

// AggFunc enumerates the window aggregate functions from §2.2:
// {Avg, Max, Min, Count, Sum, LastValue, FirstValue}.
type AggFunc int

const (
	// AggInvalid is the zero AggFunc.
	AggInvalid AggFunc = iota
	// AggAvg is the arithmetic mean of the attribute over the window.
	AggAvg
	// AggMax is the maximum.
	AggMax
	// AggMin is the minimum.
	AggMin
	// AggCount is the number of tuples in the window.
	AggCount
	// AggSum is the sum.
	AggSum
	// AggFirstVal is the attribute of the first tuple in the window.
	AggFirstVal
	// AggLastVal is the attribute of the last tuple in the window.
	AggLastVal
)

// String returns the StreamSQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case AggAvg:
		return "avg"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggFirstVal:
		return "firstval"
	case AggLastVal:
		return "lastval"
	default:
		return "invalid"
	}
}

// ParseAggFunc accepts the spellings used in obligations ("avg",
// "lastval", "lastvalue", ...).
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "avg", "average", "mean":
		return AggAvg, nil
	case "max", "maximum":
		return AggMax, nil
	case "min", "minimum":
		return AggMin, nil
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "firstval", "firstvalue", "first":
		return AggFirstVal, nil
	case "lastval", "lastvalue", "last":
		return AggLastVal, nil
	default:
		return AggInvalid, fmt.Errorf("dsms: unknown aggregate function %q", s)
	}
}

// AggSpec binds an aggregate function to an attribute: the paper's
// obligation value form "attribute:function" (e.g. "rainrate:avg").
type AggSpec struct {
	Attr string
	Func AggFunc
}

// String renders "attr:func" (the obligation attribute form).
func (a AggSpec) String() string { return a.Attr + ":" + a.Func.String() }

// OutputName is the name of the produced column, matching the paper's
// generated StreamSQL ("avg(rainrate) AS avgrainrate").
func (a AggSpec) OutputName() string {
	return a.Func.String() + strings.ToLower(a.Attr)
}

// ParseAggSpec parses "attr:func".
func ParseAggSpec(s string) (AggSpec, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" {
		return AggSpec{}, fmt.Errorf("dsms: bad aggregation attribute %q (want attr:func)", s)
	}
	f, err := ParseAggFunc(parts[1])
	if err != nil {
		return AggSpec{}, err
	}
	return AggSpec{Attr: strings.TrimSpace(parts[0]), Func: f}, nil
}

// OutputType computes the type of the aggregate output column given the
// input attribute type.
func (a AggSpec) OutputType(in stream.FieldType) (stream.FieldType, error) {
	switch a.Func {
	case AggCount:
		return stream.TypeInt, nil
	case AggAvg:
		if !in.IsNumeric() {
			return stream.TypeInvalid, fmt.Errorf("dsms: avg requires numeric attribute, %q is %s", a.Attr, in)
		}
		return stream.TypeDouble, nil
	case AggSum:
		if !in.IsNumeric() {
			return stream.TypeInvalid, fmt.Errorf("dsms: sum requires numeric attribute, %q is %s", a.Attr, in)
		}
		if in == stream.TypeInt {
			return stream.TypeInt, nil
		}
		return stream.TypeDouble, nil
	case AggMax, AggMin:
		if !in.IsNumeric() && in != stream.TypeString {
			return stream.TypeInvalid, fmt.Errorf("dsms: %s requires orderable attribute, %q is %s", a.Func, a.Attr, in)
		}
		return in, nil
	case AggFirstVal, AggLastVal:
		return in, nil
	default:
		return stream.TypeInvalid, fmt.Errorf("dsms: invalid aggregate function")
	}
}

// computeAggregate evaluates the aggregate over the window's tuples.
// pos is the attribute position in the window's input schema.
func computeAggregate(f AggFunc, tuples []stream.Tuple, pos int, inType stream.FieldType) (stream.Value, error) {
	if len(tuples) == 0 {
		return stream.Null, nil
	}
	switch f {
	case AggCount:
		return stream.IntValue(int64(len(tuples))), nil
	case AggFirstVal:
		return tuples[0].Values[pos], nil
	case AggLastVal:
		return tuples[len(tuples)-1].Values[pos], nil
	case AggAvg, AggSum:
		var sum float64
		n := 0
		for _, t := range tuples {
			v := t.Values[pos]
			if v.IsNull() {
				continue
			}
			fv, ok := v.AsFloat()
			if !ok {
				return stream.Null, fmt.Errorf("dsms: non-numeric value in %s", f)
			}
			sum += fv
			n++
		}
		if n == 0 {
			return stream.Null, nil
		}
		if f == AggAvg {
			return stream.DoubleValue(sum / float64(n)), nil
		}
		if inType == stream.TypeInt {
			return stream.IntValue(int64(sum)), nil
		}
		return stream.DoubleValue(sum), nil
	case AggMax, AggMin:
		var best stream.Value
		for _, t := range tuples {
			v := t.Values[pos]
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			cmp, err := v.Compare(best)
			if err != nil {
				return stream.Null, err
			}
			if (f == AggMax && cmp > 0) || (f == AggMin && cmp < 0) {
				best = v
			}
		}
		return best, nil
	default:
		return stream.Null, fmt.Errorf("dsms: invalid aggregate function")
	}
}
