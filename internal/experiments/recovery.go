package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/stream"
)

// RecoveryOptions parameterises the durable control-plane cost
// experiment: how expensive is a window checkpoint at a given state
// size, and how long does a crashed node take to replay its audit
// chain, catalog and window state back into a serving runtime.
type RecoveryOptions struct {
	// Tuples is the number of tuples ingested before the checkpoint
	// (the window state the checkpoint must capture).
	Tuples int
	// AuditEvents is the length of the audit chain replayed at boot.
	AuditEvents int
	// BatchSize is the publish batch size.
	BatchSize int
	// Shards is the runtime shard count.
	Shards int
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.Tuples <= 0 {
		o.Tuples = 100000
	}
	if o.AuditEvents <= 0 {
		o.AuditEvents = 2000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// RecoveryResult reports the steady-state checkpoint cost and the
// crash-recovery cost for one state size.
type RecoveryResult struct {
	Opts RecoveryOptions
	// CheckpointMS is the wall time of one full checkpoint pass over
	// the deployed queries; CheckpointBytes the resulting on-disk size.
	CheckpointMS    float64
	CheckpointBytes int64
	// BootMS is the wall time of the recovering Boot call (open + audit
	// replay + catalog restore + checkpoint import + governor replay).
	BootMS float64
	// Stats is the recovery summary the recovered node reports.
	Stats durable.RecoveryStats
}

// String renders a two-line summary.
func (r RecoveryResult) String() string {
	return fmt.Sprintf(
		"tuples=%d audit=%d:\n  checkpoint:  %.2f ms, %d bytes on disk\n  recovery:    %.2f ms boot (%d audit events, %d streams, %d queries, %d checkpoint parts restored)",
		r.Opts.Tuples, r.Opts.AuditEvents,
		r.CheckpointMS, r.CheckpointBytes,
		r.BootMS, r.Stats.AuditReplayed, r.Stats.StreamsRestored,
		r.Stats.QueriesRestored, r.Stats.CheckpointsRestored)
}

const recoveryScript = `
CREATE INPUT STREAM s (a double, t timestamp);
CREATE WINDOW w (SIZE 256 ADVANCE 32 TUPLES);
CREATE OUTPUT STREAM out;
SELECT avg(a) AS avga, max(a) AS maxa FROM s[w] INTO out;
`

// RunRecovery ingests a workload into a durable framework, measures a
// full window-checkpoint pass, crashes the node (abandons it without
// shutdown hooks, like a SIGKILL) and measures the boot that replays
// the state directory back into a serving control plane.
func RunRecovery(o RecoveryOptions) (RecoveryResult, error) {
	o = o.withDefaults()
	res := RecoveryResult{Opts: o}
	dir, err := os.MkdirTemp("", "exacml-recovery-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	fw, err := core.Boot("bench-recovery", core.Options{StateDir: dir, Shards: o.Shards})
	if err != nil {
		return res, err
	}
	schema := stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeDouble},
		stream.Field{Name: "t", Type: stream.TypeTimestamp},
	)
	if err := fw.RegisterStream("s", schema); err != nil {
		return res, err
	}
	if _, _, err := fw.Engine.DeployScript(recoveryScript); err != nil {
		return res, err
	}

	batch := make([]stream.Tuple, 0, o.BatchSize)
	arrival := int64(1_000_000)
	for i := 0; i < o.Tuples; i++ {
		batch = append(batch, stream.NewTuple(
			stream.DoubleValue(float64((i*17)%1000)),
			stream.TimestampMillis(arrival),
		))
		arrival += int64(i%3 + 1)
		if len(batch) == o.BatchSize || i == o.Tuples-1 {
			if _, err := fw.PublishBatch("s", batch); err != nil {
				return res, err
			}
			batch = batch[:0]
		}
	}
	fw.Flush()
	for i := 0; i < o.AuditEvents; i++ {
		if _, err := fw.Audit.Append(audit.Event{
			Kind:     "access",
			Subject:  fmt.Sprintf("subject%02d", i%16),
			Resource: "s",
			Action:   "read",
			Decision: "Permit",
		}); err != nil {
			return res, err
		}
	}

	t0 := time.Now()
	if err := fw.Durable.CheckpointNow(); err != nil {
		return res, err
	}
	res.CheckpointMS = float64(time.Since(t0).Microseconds()) / 1e3
	ckFiles, err := filepath.Glob(filepath.Join(dir, "checkpoints", "*.json"))
	if err != nil {
		return res, err
	}
	for _, f := range ckFiles {
		if fi, serr := os.Stat(f); serr == nil {
			res.CheckpointBytes += fi.Size()
		}
	}

	// Crash: abandon the framework without Close — no final checkpoint,
	// no audit fsync, exactly what a killed process leaves behind.
	t0 = time.Now()
	fw2, err := core.Boot("bench-recovery", core.Options{StateDir: dir, Shards: o.Shards})
	if err != nil {
		return res, err
	}
	res.BootMS = float64(time.Since(t0).Microseconds()) / 1e3
	res.Stats = fw2.Durable.Stats()
	fw2.Close()
	if res.Stats.QueriesRestored != 1 || res.Stats.StreamsRestored != 1 {
		return res, fmt.Errorf("recovery incomplete: %+v", res.Stats)
	}
	return res, nil
}
