package streamql

import (
	"strings"
	"testing"

	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/stream"
)

// fig4bScript is the paper's generated StreamSQL (Fig 4(b)), cleaned of
// its typographical artifacts (trailing comma, missing schema fields).
const fig4bScript = `
CREATE INPUT STREAM weather (
  samplingtime timestamp, temperature double,
  humidity double, rainrate double,
  windspeed double, winddirection int,
  barometer double);
CREATE STREAM internal_0;
SELECT * FROM weather WHERE rainrate > 50 INTO internal_0;
CREATE OUTPUT STREAM internal_1;
SELECT internal_0.samplingtime, internal_0.rainrate
FROM internal_0 INTO internal_1;
CREATE OUTPUT STREAM output;
CREATE WINDOW _10tuple (SIZE 10 ADVANCE 2 TUPLES);
SELECT lastval(samplingtime) AS lastvalsamplingtime,
  avg(rainrate) AS avgrainrate
FROM internal_1[_10tuple] INTO output;
`

func TestParseFig4b(t *testing.T) {
	script, err := Parse(fig4bScript)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(script.Statements) != 8 {
		t.Fatalf("statements = %d, want 8", len(script.Statements))
	}
	in, ok := script.Statements[0].(*CreateInputStream)
	if !ok || in.Name != "weather" || in.Schema.Len() != 7 {
		t.Fatalf("input statement = %#v", script.Statements[0])
	}
	win, ok := script.Statements[6].(*CreateWindow)
	if !ok || win.Spec.Size != 10 || win.Spec.Step != 2 || win.Spec.Type != dsms.WindowTuple {
		t.Fatalf("window statement = %#v", script.Statements[5])
	}
}

func TestCompileFig4b(t *testing.T) {
	c, err := CompileString(fig4bScript)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.Input != "weather" {
		t.Errorf("input = %q", c.Input)
	}
	if len(c.Graph.Boxes) != 3 {
		t.Fatalf("boxes = %d, want 3 (%s)", len(c.Graph.Boxes), c.Graph)
	}
	f := c.Graph.Boxes[0]
	if f.Kind != dsms.BoxFilter || !expr.Equal(f.Condition, expr.MustParse("rainrate > 50")) {
		t.Errorf("box 0 = %s", f)
	}
	m := c.Graph.Boxes[1]
	if m.Kind != dsms.BoxMap || len(m.Attrs) != 2 || m.Attrs[0] != "samplingtime" {
		t.Errorf("box 1 = %s", m)
	}
	a := c.Graph.Boxes[2]
	if a.Kind != dsms.BoxAggregate || a.Window.Size != 10 || len(a.Aggs) != 2 {
		t.Errorf("box 2 = %s", a)
	}
	if a.Aggs[1].Func != dsms.AggAvg || a.Aggs[1].Attr != "rainrate" {
		t.Errorf("agg 1 = %v", a.Aggs[1])
	}
}

func TestCompileExecutesEndToEnd(t *testing.T) {
	c, err := CompileString(fig4bScript)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var input []stream.Tuple
	for i := 0; i < 30; i++ {
		input = append(input, stream.NewTuple(
			stream.TimestampMillis(int64(i)*30000),
			stream.DoubleValue(25), stream.DoubleValue(80),
			stream.DoubleValue(51+float64(i)), // all pass rainrate > 50
			stream.DoubleValue(1), stream.IntValue(0), stream.DoubleValue(1000),
		))
	}
	out, schema, err := dsms.RunGraphOnSlice(c.Graph, c.Schema, input)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if schema.Len() != 2 || schema.Field(1).Name != "avgrainrate" {
		t.Fatalf("schema = %v", schema)
	}
	// 30 tuples, window 10 step 2: windows close at tuple 10,12,...,30 = 11.
	if len(out) != 11 {
		t.Fatalf("out = %d windows, want 11", len(out))
	}
	// First window avg = avg(51..60) = 55.5.
	if out[0].Values[1].Double() != 55.5 {
		t.Errorf("first avg = %v", out[0].Values[1])
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "samplingtime", Type: stream.TypeTimestamp},
		stream.Field{Name: "rainrate", Type: stream.TypeDouble},
		stream.Field{Name: "windspeed", Type: stream.TypeDouble},
	)
	g := dsms.NewQueryGraph("weather",
		dsms.NewFilterBox(expr.MustParse("rainrate > 5")),
		dsms.NewMapBox("samplingtime", "rainrate", "windspeed"),
		dsms.NewAggregateBox(dsms.WindowSpec{Type: dsms.WindowTuple, Size: 5, Step: 2},
			dsms.AggSpec{Attr: "samplingtime", Func: dsms.AggLastVal},
			dsms.AggSpec{Attr: "rainrate", Func: dsms.AggAvg},
			dsms.AggSpec{Attr: "windspeed", Func: dsms.AggMax}),
	)
	text, err := GenerateString(g, schema)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, want := range []string{
		"CREATE INPUT STREAM weather",
		"WHERE rainrate > 5",
		"CREATE WINDOW _5tuple (SIZE 5 ADVANCE 2 TUPLES);",
		"lastval(samplingtime) AS lastvalsamplingtime",
		"avg(rainrate) AS avgrainrate",
		"max(windspeed) AS maxwindspeed",
		"INTO output;",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated script missing %q:\n%s", want, text)
		}
	}
	// Round trip: compile the generated text back to an equivalent graph.
	c, err := CompileString(text)
	if err != nil {
		t.Fatalf("re-compile: %v", err)
	}
	if len(c.Graph.Boxes) != 3 {
		t.Fatalf("round-tripped boxes = %d", len(c.Graph.Boxes))
	}
	if !expr.Equal(c.Graph.Boxes[0].Condition, g.Boxes[0].Condition) {
		t.Error("filter condition survived round trip")
	}
	if !c.Graph.Boxes[2].Window.Equal(g.Boxes[2].Window) {
		t.Error("window survived round trip")
	}
}

func TestGenerateIdentityGraph(t *testing.T) {
	schema := stream.MustSchema(stream.Field{Name: "a", Type: stream.TypeInt})
	g := dsms.NewQueryGraph("s")
	text, err := GenerateString(g, schema)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	c, err := CompileString(text)
	if err != nil {
		t.Fatalf("compile identity: %v\n%s", err, text)
	}
	if len(c.Graph.Boxes) != 0 {
		t.Errorf("identity graph boxes = %d", len(c.Graph.Boxes))
	}
}

func TestGenerateWithoutSchema(t *testing.T) {
	g := dsms.NewQueryGraph("s", dsms.NewFilterBox(expr.MustParse("a > 1")))
	text, err := GenerateString(g, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if strings.Contains(text, "CREATE INPUT STREAM") {
		t.Error("schema-less generation must omit input declaration")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT;",
		"CREATE TABLE x;",
		"CREATE STREAM;",
		"CREATE INPUT STREAM s (a blob);",
		"CREATE WINDOW w (SIZE x ADVANCE 1 TUPLES);",
		"CREATE INPUT STREAM s (a int); SELECT a FROM s WHERE a > 1;", // WHERE without INTO
		"CREATE INPUT STREAM s (a int); SELECT a FROM s INTO",
		"CREATE INPUT STREAM s (a int); SELECT median(a) FROM s INTO o;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			if _, err2 := CompileString(src); err2 == nil {
				t.Errorf("Parse/Compile(%q) should fail", src)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		// No input stream.
		"CREATE STREAM o; SELECT a FROM s INTO o;",
		// Two input streams.
		"CREATE INPUT STREAM a (x int); CREATE INPUT STREAM b (x int);",
		// SELECT into undeclared stream.
		"CREATE INPUT STREAM s (a int); SELECT a FROM s INTO nowhere;",
		// Unreachable SELECT.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; SELECT a FROM other INTO o;",
		// Aggregate without window.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; SELECT avg(a) AS x FROM s INTO o;",
		// Window without aggregates.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; CREATE WINDOW w (SIZE 2 ADVANCE 1 TUPLES); SELECT a FROM s[w] INTO o;",
		// Undeclared window.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; SELECT avg(a) AS x FROM s[w] INTO o;",
		// Mixing aggregates and plain attrs.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; CREATE WINDOW w (SIZE 2 ADVANCE 1 TUPLES); SELECT avg(a) AS x, a FROM s[w] INTO o;",
		// Graph fails schema validation.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; SELECT b FROM s INTO o;",
		// Two SELECTs from the same stream.
		"CREATE INPUT STREAM s (a int); CREATE STREAM o; CREATE STREAM p; SELECT a FROM s INTO o; SELECT a FROM s INTO p;",
	}
	for _, src := range bad {
		if _, err := CompileString(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestParseSecondsWindow(t *testing.T) {
	src := "CREATE INPUT STREAM s (a int); CREATE OUTPUT STREAM o; CREATE WINDOW w (SIZE 5 ADVANCE 2 SECONDS); SELECT sum(a) AS suma FROM s[w] INTO o;"
	c, err := CompileString(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	w := c.Graph.Boxes[0].Window
	if w.Type != dsms.WindowTime || w.Size != 5000 || w.Step != 2000 {
		t.Errorf("window = %v", w)
	}
}

func TestParseComments(t *testing.T) {
	src := `-- input decl
CREATE INPUT STREAM s (a int); -- schema
CREATE OUTPUT STREAM o;
SELECT * FROM s WHERE a > 1 INTO o;`
	if _, err := CompileString(src); err != nil {
		t.Fatalf("comments should be ignored: %v", err)
	}
}

func TestScriptString(t *testing.T) {
	script, err := Parse(fig4bScript)
	if err != nil {
		t.Fatal(err)
	}
	// Rendering then re-parsing keeps statement count.
	again, err := Parse(script.String())
	if err != nil {
		t.Fatalf("re-parse rendered script: %v\n%s", err, script.String())
	}
	if len(again.Statements) != len(script.Statements) {
		t.Errorf("statement count %d != %d", len(again.Statements), len(script.Statements))
	}
}

// Regression: a dangling CREATE at end of input must error, not panic
// (found by FuzzParseScript).
func TestParseDanglingCreate(t *testing.T) {
	for _, src := range []string{"CREATE", "CREATE ", "CREATE INPUT", "CREATE INPUT STREAM", "CREATE WINDOW w (SIZE"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
