package ratelimit

import (
	"testing"
	"time"
)

// TestBucketRefill checks the bucket refills at its rate, caps at its
// burst, and grants partial batches.
func TestBucketRefill(t *testing.T) {
	b := New(1000, 10)
	if got := b.Take(20); got != 10 {
		t.Fatalf("initial take = %d, want burst 10", got)
	}
	if got := b.Take(5); got != 0 {
		t.Fatalf("empty take = %d, want 0", got)
	}
	time.Sleep(20 * time.Millisecond) // ~20 tokens at 1000/s, capped at burst
	if got := b.Take(100); got < 5 || got > 10 {
		t.Fatalf("refilled take = %d, want 5..10", got)
	}
}

func TestBucketDefaults(t *testing.T) {
	if New(0, 100) != nil {
		t.Fatal("rate 0 must mean no bucket (unlimited)")
	}
	var nilBucket *Bucket
	if got := nilBucket.Take(7); got != 7 {
		t.Fatalf("nil bucket take = %d, want everything granted", got)
	}
	// burst <= 0 defaults to one second of rate.
	b := New(3.5, 0)
	if got := b.Take(10); got != 4 {
		t.Fatalf("default-burst take = %d, want ceil(rate) = 4", got)
	}
}
