// Command benchrunner regenerates the paper's evaluation artifacts:
//
//	benchrunner -exp table3              # print the Table 3 parameters
//	benchrunner -exp fig6a               # CDF: direct query vs eXACML+ (unique sequence)
//	benchrunner -exp fig6b               # CDF: Zipf sequence, direct vs cache off/on
//	benchrunner -exp fig7a               # per-request breakdown, 100 requests / 50 policies
//	benchrunner -exp fig7b               # per-request breakdown, 1500 requests / 1000 policies
//	benchrunner -exp policyload          # policy loading time statistics
//	benchrunner -exp engine              # engine hot path: ns/tuple per pipeline × batch size
//	benchrunner -exp sharded             # sharded ingest runtime throughput matrix
//	benchrunner -exp admission           # priority classes + quotas under overload
//	benchrunner -exp remote              # mixed local/remote (dsmsd) shard topology
//	benchrunner -exp partition           # global re-aggregation vs per-shard baseline
//	benchrunner -exp governor            # audit-fed governor demotes an abusive subject
//	benchrunner -exp recovery            # durable control plane: checkpoint cost + crash-recovery boot
//	benchrunner -exp all                 # everything
//
// -scale N shrinks the workload by N for quick runs. Output is textual:
// the same series the paper plots, as aligned columns.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|fig6a|fig6b|fig7a|fig7b|policyload|engine|sharded|admission|remote|partition|governor|recovery|all")
	scale := flag.Int("scale", 1, "shrink the Table 3 workload by this factor")
	points := flag.Int("points", 20, "CDF sample points")
	noNet := flag.Bool("no-netsim", false, "disable simulated intranet latency")
	csvDir := flag.String("csv", "", "also write each figure's raw series as CSV into this directory")
	engineOut := flag.String("engine-out", "BENCH_ENGINE.json", "where -exp engine writes its JSON report (empty to skip)")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("create csv dir: %v", err)
		}
	}

	cfg := experiments.DefaultConfig()
	if *scale > 1 {
		cfg = experiments.QuickConfig(*scale)
	}
	if *noNet {
		cfg.NetworkSeed = 0
		cfg.ConnectDelay = 0
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table3") {
		run("Table 3: workload parameters", func() error {
			printTable3(cfg.Params)
			return nil
		})
	}
	if want("fig6a") {
		run("Fig 6(a): overall performance, unique query & request sequence", func() error {
			res, err := experiments.RunFig6a(cfg)
			if err != nil {
				return err
			}
			fmt.Print(metrics.RenderCDFTable(*points, res.Direct, res.EXACML))
			writeCSV(*csvDir, "fig6a.csv", res.Direct, res.EXACML)
			dm := metrics.FromSeries(res.Direct)
			em := metrics.FromSeries(res.EXACML)
			fmt.Printf("\nmedians: direct=%v eXACML+=%v (overhead %.2fx)\n",
				dm.Median().Round(time.Microsecond), em.Median().Round(time.Microsecond),
				float64(em.Median())/float64(dm.Median()))
			return nil
		})
	}
	if want("fig6b") {
		run("Fig 6(b): Zipf-distributed sequence, cache off/on", func() error {
			res, err := experiments.RunFig6b(cfg)
			if err != nil {
				return err
			}
			fmt.Print(metrics.RenderCDFTable(*points, res.CacheOff, res.CacheOn, res.Direct))
			writeCSV(*csvDir, "fig6b.csv", res.CacheOff, res.CacheOn, res.Direct)
			over100, over10, under10 := metrics.ImprovementHistogram(res.CacheOff, res.CacheOn)
			fmt.Printf("\ncache hits=%d misses=%d\n", res.CacheHits, res.CacheMisses)
			fmt.Printf("improvement from caching: >=100%% for %.0f%% of requests, >=10%% for %.0f%%, <10%% for %.0f%%\n",
				over100*100, over10*100, under10*100)
			return nil
		})
	}
	if want("fig7a") {
		run("Fig 7(a): detailed processing time, 100 requests / 50 policies", func() error {
			n, p := scaleDown(100, 50, *scale)
			res, err := experiments.RunFig7(cfg, n, p)
			if err != nil {
				return err
			}
			printBreakdown(res.Series, 10)
			writeCSV(*csvDir, "fig7a.csv", res.Series)
			return nil
		})
	}
	if want("fig7b") {
		run("Fig 7(b): detailed processing time, 1500 requests / 1000 policies", func() error {
			n, p := scaleDown(1500, 1000, *scale)
			res, err := experiments.RunFig7(cfg, n, p)
			if err != nil {
				return err
			}
			printBreakdown(res.Series, 50)
			writeCSV(*csvDir, "fig7b.csv", res.Series)
			return nil
		})
	}
	if want("ablation") {
		run("Ablation: §3.1 graph merging vs naive concatenation", func() error {
			res, err := experiments.RunAblationMerge(cfg.Params, 2000)
			if err != nil {
				return err
			}
			fmt.Println(res)
			return nil
		})
	}
	if want("policyload") {
		run("Policy loading time", func() error {
			stats, err := experiments.RunPolicyLoad(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("per-policy load time over %d policies: %s\n", stats.N, stats)
			fmt.Println("(paper: 0.25 s ± 0.06 s on their Java/4-machine testbed; the shape to check is constancy w.r.t. the number of already-loaded policies)")
			return nil
		})
	}
	if want("engine") {
		run("Engine hot path: ns/tuple per pipeline × batch size", func() error {
			return runEngine(*scale, *engineOut)
		})
	}
	if want("sharded") {
		run("Sharded ingest runtime: shards × batch throughput matrix", func() error {
			return runSharded(*scale)
		})
	}
	if want("admission") {
		run("Admission control: priority classes and quotas under overload", func() error {
			return runAdmission(*scale)
		})
	}
	if want("remote") {
		run("Remote shard backends: mixed local/dsmsd topology", func() error {
			return runRemote(*scale, !*noNet)
		})
	}
	if want("partition") {
		run("Global re-aggregation: merged partitioned aggregate vs per-shard baseline", func() error {
			return runPartition(*scale, *engineOut)
		})
	}
	if want("governor") {
		run("Accountability governor: audit-fed demotion of an abusive subject", func() error {
			return runGovernor(*scale)
		})
	}
	if want("recovery") {
		run("Durable control plane: checkpoint cost and crash-recovery boot", func() error {
			return runRecovery(*scale, *engineOut)
		})
	}
	if *exp != "all" && !wantKnown(*exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func wantKnown(e string) bool {
	switch e {
	case "table3", "fig6a", "fig6b", "fig7a", "fig7b", "policyload", "ablation", "engine", "sharded", "admission", "remote", "partition", "governor", "recovery", "all":
		return true
	}
	return false
}

// runRemote measures the cost of crossing the wire per shard: the same
// publisher workload against an all-local topology and against a mixed
// topology where part of the shards are dsmsd processes (optionally
// behind the simulated 100 Mbps intranet), then prints the per-shard
// accounting of the mixed run so the offered == ingested + dropped +
// errors invariant is visible on both backend kinds.
func runRemote(scale int, simnet bool) error {
	tuples := 60000
	if scale > 1 {
		tuples /= scale
	}
	local, err := experiments.RunRemoteShards(experiments.RemoteShardsOptions{
		LocalShards: 3, RemoteShards: 0, Tuples: tuples,
	})
	if err != nil {
		return err
	}
	mixed, err := experiments.RunRemoteShards(experiments.RemoteShardsOptions{
		LocalShards: 1, RemoteShards: 2, Tuples: tuples, Simnet: simnet,
	})
	if err != nil {
		return err
	}
	fmt.Printf("all-local : %s\n", local)
	fmt.Printf("mixed     : %s\n\n", mixed)
	fmt.Print(mixed.Stats)
	if local.Throughput > 0 {
		fmt.Printf("\nremote topology runs at %.0f%% of all-local throughput (simnet=%v)\n",
			100*mixed.Throughput/local.Throughput, simnet)
	}
	// Replicated failover: kill the remote primary mid-run, restart it
	// later, and report the blast radius (tuples lost to the
	// down-detection window), the failover latency and whether the
	// restarted process was re-adopted and re-fed.
	fo, err := experiments.RunFailoverBlastRadius(experiments.FailoverOptions{
		Tuples: tuples / 2, Simnet: simnet,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nreplicated failover: %s\n", fo)
	return nil
}

// runSharded prints the sharded ingest throughput matrix (shards ×
// batch sizes) as speedups over the single-thread Engine.Ingest
// baseline, then demonstrates load-shedding on a deliberately
// undersized DropOldest queue.
func runSharded(scale int) error {
	tuples := 200000
	if scale > 1 {
		tuples /= scale
	}
	base, err := experiments.RunSingleThreadIngest(tuples)
	if err != nil {
		return err
	}
	fmt.Printf("baseline single-thread Ingest: %.0f tuples/s (%d tuples in %v)\n\n",
		base.Throughput, tuples, base.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-8s %-8s %-14s %-10s %-10s\n", "shards", "batch", "tuples/s", "speedup", "dropped")
	for _, shards := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 64, 256} {
			res, err := experiments.RunShardedIngest(experiments.ShardedOptions{
				Shards:     shards,
				Publishers: 4,
				BatchSize:  batch,
				Tuples:     tuples,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-8d %-8d %-14.0f %-10.2f %-10d\n",
				shards, batch, res.Throughput, res.Throughput/base.Throughput,
				res.Stats.Total().Dropped)
		}
	}
	shed, err := experiments.RunShardedIngest(experiments.ShardedOptions{
		Shards:     2,
		Publishers: 4,
		BatchSize:  64,
		Tuples:     tuples,
		QueueSize:  128,
		Policy:     runtime.DropOldest,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nload-shedding (queue=128, DropOldest): %s\n", shed)
	fmt.Print(shed.Stats)
	return nil
}

// runAdmission demonstrates class-aware shedding and per-stream quotas:
// a paced Critical stream and a saturating BestEffort stream share one
// shard under DropNewest, then a quota'd stream shows the token-bucket
// verdict path. Both scenarios print the per-stream/per-class tables
// and check the offered == ingested + dropped + errors invariant.
func runAdmission(scale int) error {
	critical := 20000
	bestEffort := 200000
	if scale > 1 {
		critical /= scale
		bestEffort /= scale
	}
	res, err := experiments.RunAdmission(experiments.AdmissionOptions{
		Shards:    1,
		QueueSize: 256,
		Policy:    runtime.DropNewest,
		Streams: []experiments.AdmissionStreamSpec{
			{Name: "critical", Class: runtime.Critical, Publishers: 1, Tuples: critical, OfferRate: 40000},
			{Name: "besteffort", Class: runtime.BestEffort, Publishers: 4, Tuples: bestEffort},
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res)
	fmt.Printf("critical sustained %.1f%% of its offered rate (want >= 90%%)\n", 100*res.Sustained("critical"))
	if err := checkClassInvariant(res.Stats); err != nil {
		return err
	}

	quota := 20000
	if scale > 1 {
		quota /= scale
	}
	burst := quota / 5
	fmt.Printf("\nquota: one stream limited to 1000 tuples/s (burst %d) against a %d-tuple burst\n", burst, quota)
	qres, err := experiments.RunAdmission(experiments.AdmissionOptions{
		Shards:    1,
		QueueSize: quota,
		Policy:    runtime.DropNewest,
		Streams: []experiments.AdmissionStreamSpec{
			{Name: "metered", Class: runtime.Normal, Rate: 1000, Burst: burst, Publishers: 1, Tuples: quota},
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(qres)
	return checkClassInvariant(qres.Stats)
}

// runGovernor demonstrates the accountability loop of
// docs/ACCOUNTABILITY.md: a besteffort subject floods its stream while
// accumulating PDP denials; the governor demotes the stream's quota
// and the accepted rate collapses (>= 10x is the acceptance bar,
// typically orders of magnitude more), while a clean critical subject
// sustains >= 99% of its offered rate; the demotion and its eventual
// restore are verified as govern events on an intact audit chain.
func runGovernor(scale int) error {
	opts := experiments.GovernorOptions{}
	if scale > 1 {
		opts.Phase = 400 * time.Millisecond / time.Duration(scale)
		opts.Cooldown = 150 * time.Millisecond
	}
	res, err := experiments.RunGovernor(opts)
	if err != nil {
		return err
	}
	fmt.Print(res)
	fmt.Print(res.Stats)
	fmt.Print(res.Governor)
	if err := checkClassInvariant(res.Stats); err != nil {
		return err
	}
	return res.CheckGovernor(10, 0.99)
}

// checkClassInvariant verifies the per-class accounting after a flush.
func checkClassInvariant(st metrics.RuntimeStats) error {
	for _, c := range st.Classes {
		if c.Offered != c.Ingested+c.Dropped+c.Errors {
			return fmt.Errorf("class %s: offered %d != ingested %d + dropped %d + errors %d",
				c.Class, c.Offered, c.Ingested, c.Dropped, c.Errors)
		}
	}
	fmt.Println("per-class invariant holds: offered == ingested + dropped + errors")
	return nil
}

func scaleDown(n, p, scale int) (int, int) {
	if scale <= 1 {
		return n, p
	}
	n /= scale
	p /= scale
	if n < 1 {
		n = 1
	}
	if p < 1 {
		p = 1
	}
	return n, p
}

func printTable3(p workload.Params) {
	fmt.Printf("%-18s %-38s %s\n", "Variable", "Value", "Description")
	fmt.Printf("%-18s %-38d %s\n", "nDirectQueries", p.NDirectQueries, "number of direct queries")
	fmt.Printf("%-18s %d:%d:%d:%d:%d:%d:%d%*s %s\n", "directQueryDist",
		p.Dist[0], p.Dist[1], p.Dist[2], p.Dist[3], p.Dist[4], p.Dist[5], p.Dist[6], 11, "",
		"query graph composition (FB : MB : AB : FB+MB : FB+AB : MB+AB : FB+MB+AB)")
	fmt.Printf("%-18s %-38d %s\n", "nPolicies", p.NPolicies, "number of unique policies")
	fmt.Printf("%-18s %-38d %s\n", "nRequests", p.NRequests, "number of matching requests")
	fmt.Printf("%-18s %-38.3f %s\n", "alpha", p.Alpha, "skew parameter for Zipf distribution")
	fmt.Printf("%-18s %-38d %s\n", "maxRank", p.MaxRank, "maximum rank of unique requests for Zipf")
}

// writeCSV dumps raw per-request samples (seq, total and phase times in
// seconds, cache-hit flag) for external plotting. A no-op when dir is
// empty.
func writeCSV(dir, name string, series ...*metrics.Series) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatalf("csv %s: %v", name, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	_ = w.Write([]string{"series", "seq", "total_s", "pdp_s", "graph_s", "engine_s", "cache_hit"})
	for _, s := range series {
		for _, sm := range s.Samples {
			_ = w.Write([]string{
				s.Name,
				strconv.Itoa(sm.Seq),
				strconv.FormatFloat(sm.Total.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(sm.PDP.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(sm.Graph.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(sm.Engine.Seconds(), 'g', -1, 64),
				strconv.FormatBool(sm.CacheHit),
			})
		}
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(dir, name))
}

// printBreakdown renders the Fig 7 per-request component view: total,
// PDP, query-graph and engine times, one row every stride requests,
// plus phase summaries.
func printBreakdown(s *metrics.Series, stride int) {
	fmt.Printf("%-8s %-14s %-14s %-14s %-14s\n", "req#", "total", "PDP", "QueryGraph", "StreamBase")
	for i, sm := range s.Samples {
		if i%stride != 0 && i != len(s.Samples)-1 {
			continue
		}
		fmt.Printf("%-8d %-14v %-14v %-14v %-14v\n", sm.Seq,
			sm.Total.Round(time.Microsecond), sm.PDP.Round(time.Microsecond),
			sm.Graph.Round(time.Microsecond), sm.Engine.Round(time.Microsecond))
	}
	var pdp, graph, engine, total []time.Duration
	for _, sm := range s.Samples {
		pdp = append(pdp, sm.PDP)
		graph = append(graph, sm.Graph)
		engine = append(engine, sm.Engine)
		total = append(total, sm.Total)
	}
	fmt.Printf("\nsummaries:\n  total:      %s\n  PDP:        %s\n  QueryGraph: %s\n  StreamBase: %s\n",
		metrics.Summarize(total), metrics.Summarize(pdp), metrics.Summarize(graph), metrics.Summarize(engine))
}
