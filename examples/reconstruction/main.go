// The §3.4 privacy attack, executable: a user who obtains multiple
// aggregated views of one stream (same advance step, increasing window
// sizes) reconstructs the raw data — which is exactly why eXACML+
// permits only a single live query per user per stream. The example
// first mounts the attack offline, then shows the framework refusing
// the second window.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/recon"
	"repro/internal/stream"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func main() {
	// --- Part 1: the attack, offline (Example 2 of the paper). ---
	// The policy allows sum windows of size >= 3, step 2. The attacker
	// asks for sizes 3, 4 and 5.
	secret := []float64{7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5, 2, 3, 5, 6}
	views := recon.CollectViews(secret, 3, 2)
	fmt.Println("attacker sees three aggregated streams (sum, step 2, sizes 3/4/5):")
	for i, s := range views.Streams {
		fmt.Printf("  S%d (size %d): %v\n", i+1, 3+i, s)
	}
	rebuilt, err := recon.Reconstruct(views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed a3,a4,...   : %v\n", rebuilt)
	fmt.Printf("actual     a3,a4,...      : %v\n", secret[3:])
	if _, mismatch := recon.VerifyAgainst(secret, 3, rebuilt, 1e-9); mismatch == -1 {
		fmt.Println("=> raw stream recovered except the first N-1 tuples. Privacy lost.")
	}

	// --- Part 2: eXACML+ blocks the second window. ---
	fw := core.New("guarded")
	defer fw.Close()
	schema := stream.MustSchema(stream.Field{Name: "a", Type: stream.TypeDouble})
	if err := fw.RegisterStream("s", schema); err != nil {
		log.Fatal(err)
	}
	// Policy: sum windows of size >= 3, step >= 2 are allowed.
	pol := xacml.NewPermitPolicy("owner:s:any",
		xacml.NewTarget("", "s", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationWindow,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewIntAssignment(xacmlplus.AttrWindowSize, "3"),
				xacml.NewIntAssignment(xacmlplus.AttrWindowStep, "2"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowType, "tuple"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "a:sum"),
			},
		},
	)
	if err := fw.AddPolicy(pol); err != nil {
		log.Fatal(err)
	}
	window := func(size int64) *xacmlplus.UserQuery {
		return &xacmlplus.UserQuery{
			Stream: xacmlplus.StreamRef{Name: "s"},
			Aggregation: &xacmlplus.AggClause{
				WindowType: "tuple", WindowSize: size, WindowStep: 2,
				Attributes: []string{"sum(a)"},
			},
		}
	}
	r1, err := core.RequireHandle(fw.Request("mallory", "s", "read", window(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmallory's first window (size 3): granted, handle %s\n", r1.Handle)

	if _, err := fw.Request("mallory", "s", "read", window(4)); err != nil {
		fmt.Printf("mallory's second window (size 4): REFUSED: %v\n", err)
	} else {
		log.Fatal("BUG: second simultaneous window was granted")
	}
	if _, err := fw.Request("mallory", "s", "read", window(5)); err != nil {
		fmt.Printf("mallory's third window (size 5):  REFUSED: %v\n", err)
	}
	fmt.Println("=> with a single live aggregation per user per stream, the differencing attack cannot be mounted.")
}
