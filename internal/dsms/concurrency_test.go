package dsms

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/stream"
)

// TestConcurrentIngestDeployWithdraw hammers the engine from multiple
// goroutines: ingesters, deployers, withdrawers and subscribers all
// race. Run with -race; the invariant checked is absence of data races,
// deadlocks and panics, plus a consistent final state.
func TestConcurrentIngestDeployWithdraw(t *testing.T) {
	e := NewEngine("conc")
	defer e.Close()
	if err := e.CreateStream("s", singleAttrSchema()); err != nil {
		t.Fatal(err)
	}

	const (
		nIngesters  = 4
		nDeployers  = 4
		perDeployer = 25
		perIngester = 200
	)
	var wg sync.WaitGroup

	// Ingesters.
	for g := 0; g < nIngesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perIngester; i++ {
				_ = e.Ingest("s", stream.NewTuple(stream.IntValue(int64(g*1000+i))))
			}
		}(g)
	}

	// Deployers that also subscribe and withdraw half their queries.
	errCh := make(chan error, nDeployers*perDeployer)
	for g := 0; g < nDeployers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perDeployer; i++ {
				dep, err := e.Deploy(NewQueryGraph("s", NewFilterBox(expr.MustParse("a >= 0"))))
				if err != nil {
					errCh <- fmt.Errorf("deploy: %w", err)
					return
				}
				sub, err := e.Subscribe(dep.ID)
				if err != nil {
					errCh <- fmt.Errorf("subscribe: %w", err)
					return
				}
				if i%2 == 0 {
					if err := e.Withdraw(dep.ID); err != nil {
						errCh <- fmt.Errorf("withdraw: %w", err)
						return
					}
				} else {
					e.Unsubscribe(dep.ID, sub)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	e.Flush()
	// Each deployer withdraws on even i: ceil(perDeployer/2) withdrawn.
	want := nDeployers * (perDeployer - (perDeployer+1)/2)
	if got := e.QueryCount(); got != want {
		t.Errorf("QueryCount = %d, want %d", got, want)
	}
}

// TestConcurrentSubscribersSeeAllTuples: N subscribers on one query
// each receive every output tuple exactly once, in order.
func TestConcurrentSubscribersSeeAllTuples(t *testing.T) {
	e := NewEngine("fanout")
	defer e.Close()
	if err := e.CreateStream("s", singleAttrSchema()); err != nil {
		t.Fatal(err)
	}
	dep, err := e.Deploy(NewQueryGraph("s"))
	if err != nil {
		t.Fatal(err)
	}
	const nSubs = 8
	subs := make([]*Subscription, nSubs)
	for i := range subs {
		if subs[i], err = e.Subscribe(dep.ID); err != nil {
			t.Fatal(err)
		}
	}
	const n = 500
	var wg sync.WaitGroup
	results := make([][]int64, nSubs)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for tu := range subs[i].C {
				results[i] = append(results[i], tu.Values[0].Int())
				if len(results[i]) == n {
					return
				}
			}
		}(i)
	}
	for v := int64(0); v < n; v++ {
		if err := e.Ingest("s", stream.NewTuple(stream.IntValue(v))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, got := range results {
		if len(got) != n {
			t.Fatalf("subscriber %d got %d tuples", i, len(got))
		}
		for j := range got {
			if got[j] != int64(j) {
				t.Fatalf("subscriber %d out of order at %d: %d", i, j, got[j])
			}
		}
	}
}

// TestFlushUnderConcurrency: Flush returns only after in-flight tuples
// are processed, even while other goroutines keep ingesting.
func TestFlushUnderConcurrency(t *testing.T) {
	e := NewEngine("flush")
	defer e.Close()
	if err := e.CreateStream("s", singleAttrSchema()); err != nil {
		t.Fatal(err)
	}
	dep, err := e.Deploy(NewQueryGraph("s"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := e.Subscribe(dep.ID)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			_ = e.Ingest("s", stream.NewTuple(stream.IntValue(int64(i))))
			if i%50 == 0 {
				e.Flush()
			}
		}
	}()
	<-done
	e.Flush()
	if got := len(sub.C); got != 300 {
		t.Errorf("after final flush, delivered = %d, want 300", got)
	}
}
