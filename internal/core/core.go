// Package core is the top-level facade of the eXACML+ reproduction: it
// wires the sharded ingest runtime (a pool of Aurora-style stream
// engines behind bounded queues), the XACML PDP and the XACML+ PEP into
// a single in-process Framework with a small, documented API.
//
// Options selects the ingest configuration (shard count, queue sizes,
// backpressure policy and its class threshold); streams register with
// RegisterStream / RegisterPartitionedStream and may carry a priority
// class and a token-bucket quota via runtime.WithClass /
// runtime.WithQuota, both swappable at runtime with Reconfigure.
// Options.Audit records every decision into a hash-chained
// accountability log, and Options.Governor starts the audit-fed
// governor that demotes abusive subjects' streams live (see
// internal/governor and docs/ACCOUNTABILITY.md). The networked
// deployment (data server, proxy, client over TCP) lives in
// internal/server, internal/proxy and internal/client; this package is
// the embedded form that examples, tools and downstream users start
// from.
package core

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/durable"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// Options tunes the ingest plane of a Framework. The zero value is the
// paper-faithful configuration: one engine shard, blocking
// backpressure.
type Options struct {
	// Shards is the number of engine shards (default 1). Ignored when
	// ShardAddrs is set.
	Shards int
	// ShardAddrs selects a backend per shard slot for mixed topologies:
	// each entry is a dsmsd host:port address for a remote shard, or ""
	// / "local" for an in-process engine (runtime.ParseShardAddrs reads
	// the CLI form). When non-empty its length is the shard count.
	ShardAddrs []runtime.BackendSpec
	// QueueSize is the per-shard publish queue capacity (default 4096).
	QueueSize int
	// BatchSize is the per-shard drain batch size (default 256).
	BatchSize int
	// Policy is the backpressure policy applied when a shard queue is
	// full: runtime.Block (default), runtime.DropNewest or
	// runtime.DropOldest.
	Policy runtime.Policy
	// BlockClass limits the Block policy to streams of this priority
	// class or above; lower classes are shed when a queue is full. The
	// default (runtime.BestEffort) blocks every stream.
	BlockClass runtime.Class
	// Failover selects how publishes bound for a downed remote shard
	// are handled: runtime.FailoverFail (default) or
	// runtime.FailoverReroute. Replicated streams ignore it (they fail
	// over to their own replicas).
	Failover runtime.FailoverMode
	// Replication places every single-shard stream on this many shards
	// (primary + Replication-1 asynchronously fed followers) and fails
	// queries over to the most caught-up follower when the primary's
	// shard dies. 0/1 disables replication; values above the shard
	// count are clamped.
	Replication int
	// ReplicationLog bounds the retained per-stream replication log in
	// tuples (default runtime.DefaultReplicationLog). Only meaningful
	// with Replication > 1.
	ReplicationLog int
	// Audit, when non-nil, records every PDP/PEP decision into the
	// given accountability log (equivalent to setting PEP.Audit after
	// construction, but available before the first request).
	Audit *audit.Log
	// Governor, when non-nil, starts the accountability governor over
	// the audit log: subjects accumulating deny/NR-violation decisions
	// have their bound streams' class demoted and quota tightened at
	// runtime, and restored after a cooldown (see internal/governor).
	// An in-memory audit log is created when Audit is nil, since the
	// governor cannot feed on decisions nobody records. Bind subjects
	// to their streams with Framework.Governor.Bind.
	Governor *governor.Config
	// Metrics, when non-nil, instruments the whole framework on the
	// given registry: runtime ingest counters and publish-path traces,
	// engine shard counters, PEP request-phase histograms, audit and
	// governor counters. Serve it with telemetry.ServeOps.
	Metrics *telemetry.Registry
	// TraceSampleEvery sets the publish-path trace sampling period in
	// tuples (rounded up to a power of two; default
	// runtime.DefaultTraceSampleEvery). Only meaningful with Metrics.
	TraceSampleEvery int
	// MergeBuffer bounds the cross-partition merge stage's per-partition
	// reorder buffer (default runtime.DefaultMergeBuffer); see
	// runtime.Options.MergeBuffer for the force-release semantics.
	MergeBuffer int
	// MergeLateness bounds how long the merge stage waits on a lagging
	// partition before force-releasing the oldest pending window
	// (default 0 = wait indefinitely); see runtime.Options.MergeLateness.
	MergeLateness time.Duration
	// StateDir, when non-empty, makes the control plane durable (Boot
	// only): the audit chain is persisted as JSON lines, stream DDL and
	// deployed queries as crash-consistent catalog snapshots, and window
	// state as periodic checkpoints, all under this directory — and all
	// replayed into the framework on the next Boot. Mutually exclusive
	// with Audit (the durable manager owns the audit log's writer).
	StateDir string
	// CheckpointInterval is the period of the durable window
	// checkpointer (default 0 = only the final checkpoint taken at
	// Close). Only meaningful with StateDir.
	CheckpointInterval time.Duration
}

// EngineSurface is the runtime-wide DSMS surface a Framework exposes:
// the PEP-facing xacmlplus.StreamEngine (schema lookup, script deploy,
// withdraw — routed to the owning shard by stream) plus the query
// inventory.
type EngineSurface interface {
	xacmlplus.StreamEngine
	// QueryCount sums running continuous queries across all shards.
	QueryCount() int
	// Streams lists registered stream names, sorted.
	Streams() []string
}

// Framework is an embedded eXACML+ instance: a sharded stream runtime
// plus the access-control plane over it.
type Framework struct {
	// Runtime is the sharded ingest plane fronting the shard backends
	// (in-process engines and/or remote dsmsd processes).
	Runtime *runtime.Runtime
	// Engine is the runtime-wide DSMS surface: deploys and withdrawals
	// are routed to the shard owning the target stream, so every
	// registered stream is visible regardless of which shard it landed
	// on. (It used to be shard 0's raw engine, which hid streams hashed
	// onto other shards.)
	Engine EngineSurface
	// PDP stores and evaluates XACML policies.
	PDP *xacml.PDP
	// PEP enforces decisions: obligations → query graphs, merging,
	// NR/PR analysis, single-access guard, graph management.
	PEP *xacmlplus.PEP
	// Audit is the accountability log every decision is recorded in
	// (nil unless Options.Audit or Options.Governor enabled it).
	Audit *audit.Log
	// Governor is the accountability governor (nil unless
	// Options.Governor enabled it).
	Governor *governor.Governor
	// Durable is the state-dir manager (nil unless Boot was called with
	// Options.StateDir).
	Durable *durable.Manager
}

// New creates a framework with a fresh single-shard runtime.
func New(name string) *Framework { return NewWithOptions(name, Options{}) }

// NewWithOptions creates a framework whose ingest plane is sharded and
// policed per opts. The PEP/PDP plane is identical regardless of the
// shard count: the runtime implements the engine surface the PEP
// deploys against. Options.StateDir is ignored here — use Boot for a
// durable control plane.
func NewWithOptions(name string, opts Options) *Framework {
	return newWithOptions(name, opts, nil)
}

// Boot is NewWithOptions plus the durable control plane: with
// Options.StateDir set it opens (and repairs) the state directory,
// continues the persisted audit chain, replays the catalog (streams,
// queries) and the window checkpoints into the fresh framework, feeds
// the audit history through the governor so demotions survive the
// restart, and starts the periodic checkpointer. Framework.Ready
// reports nil only once recovery has completed — serve it as the
// readiness probe. Without StateDir, Boot is NewWithOptions.
func Boot(name string, opts Options) (*Framework, error) {
	if opts.StateDir == "" {
		return NewWithOptions(name, opts), nil
	}
	if opts.Audit != nil {
		return nil, fmt.Errorf("core: Options.Audit and Options.StateDir are mutually exclusive (the state dir owns the audit log)")
	}
	dm, err := durable.Open(opts.StateDir, opts.Metrics)
	if err != nil {
		return nil, err
	}
	opts.Audit = dm.Log()
	fw := newWithOptions(name, opts, dm.CatalogObserver())
	fw.Durable = dm
	if err := dm.Recover(fw.Runtime, fw.Governor, opts.CheckpointInterval); err != nil {
		fw.Close()
		return nil, err
	}
	return fw, nil
}

func newWithOptions(name string, opts Options, catalog runtime.CatalogObserver) *Framework {
	// Resolve the audit log before the runtime exists: shard health
	// transitions are audited by the runtime itself (Kind "health").
	auditLog := opts.Audit
	if opts.Governor != nil && auditLog == nil {
		auditLog = audit.NewLog(nil)
	}
	rt := runtime.New(name, runtime.Options{
		Shards:           opts.Shards,
		Backends:         opts.ShardAddrs,
		QueueSize:        opts.QueueSize,
		BatchSize:        opts.BatchSize,
		Policy:           opts.Policy,
		BlockClass:       opts.BlockClass,
		Failover:         opts.Failover,
		Replication:      opts.Replication,
		ReplicationLog:   opts.ReplicationLog,
		MergeBuffer:      opts.MergeBuffer,
		MergeLateness:    opts.MergeLateness,
		Metrics:          opts.Metrics,
		TraceSampleEvery: opts.TraceSampleEvery,
		Audit:            auditLog,
		Catalog:          catalog,
	})
	pdp := xacml.NewPDP()
	fw := &Framework{
		Runtime: rt,
		Engine:  rt,
		PDP:     pdp,
		PEP:     xacmlplus.NewPEP(pdp, rt),
		Audit:   auditLog,
	}
	if opts.Governor != nil {
		// The governor's demotions and cooldown restores go through the
		// ephemeral reconfigure surface: they are re-derived from the
		// audit chain on boot, so persisting them in the durable catalog
		// would bake a temporary demotion into the restored base config.
		fw.Governor = governor.New(ephemeralAdmission{rt}, fw.Audit, *opts.Governor)
	}
	if fw.Audit != nil {
		fw.PEP.Audit = fw.Audit
	}
	if opts.Metrics != nil {
		fw.PEP.EnableTelemetry(opts.Metrics)
		if fw.Audit != nil {
			fw.Audit.EnableTelemetry(opts.Metrics)
		}
		if fw.Governor != nil {
			fw.Governor.EnableTelemetry(opts.Metrics)
		}
	}
	return fw
}

// ephemeralAdmission routes the governor's admission swaps around the
// durable catalog (see newWithOptions).
type ephemeralAdmission struct{ rt *runtime.Runtime }

func (e ephemeralAdmission) StreamAdmission(name string) (runtime.StreamConfig, error) {
	return e.rt.StreamAdmission(name)
}

func (e ephemeralAdmission) Reconfigure(name string, cfg runtime.StreamConfig) (runtime.StreamConfig, error) {
	return e.rt.ReconfigureEphemeral(name, cfg)
}

// Ready reports nil once the framework can serve: the runtime's shards
// are healthy and — for a Boot-ed framework — durable recovery has
// completed. Serve it as the /readyz probe.
func (f *Framework) Ready() error {
	if err := f.Durable.Ready(); err != nil {
		return err
	}
	return f.Runtime.Health()
}

// Close stops the governor, then the durable manager (final window
// checkpoint + audit sync — the runtime must still be alive for the
// checkpoint's quiesce fence), then shuts down the runtime, all engine
// shards and all continuous queries.
func (f *Framework) Close() {
	if f.Governor != nil {
		f.Governor.Close()
	}
	if f.Durable != nil {
		_ = f.Durable.Close()
	}
	f.Runtime.Close()
}

// RegisterStream declares a data-owner's stream, placed on one shard by
// the hash of its name. Options attach a priority class and a
// token-bucket quota (runtime.WithClass, runtime.WithQuota).
func (f *Framework) RegisterStream(name string, schema *stream.Schema, opts ...runtime.StreamOption) error {
	return f.Runtime.CreateStream(name, schema, opts...)
}

// RegisterPartitionedStream declares a stream whose tuples are spread
// across all shards by the hash of the named key field; continuous
// queries over it run on every shard with merged output.
func (f *Framework) RegisterPartitionedStream(name string, schema *stream.Schema, keyField string, opts ...runtime.StreamOption) error {
	return f.Runtime.CreatePartitionedStream(name, schema, keyField, opts...)
}

// LoadPolicy parses and activates a policy document; reloading an
// existing id withdraws the old version's query graphs first (§3.3).
func (f *Framework) LoadPolicy(policyXML []byte) (string, error) {
	pol, err := xacml.ParsePolicy(policyXML)
	if err != nil {
		return "", err
	}
	if _, err := f.PEP.UpdatePolicy(pol); err != nil {
		return "", err
	}
	return pol.PolicyID, nil
}

// AddPolicy activates an already-built policy object.
func (f *Framework) AddPolicy(pol *xacml.Policy) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	_, err := f.PEP.UpdatePolicy(pol)
	return err
}

// RemovePolicy removes a policy and withdraws every query graph it
// spawned, returning the withdrawn query ids.
func (f *Framework) RemovePolicy(policyID string) ([]string, error) {
	return f.PEP.RemovePolicy(policyID)
}

// Request asks for a stream as (subject, stream, action) with an
// optional customised query. On Permit with no NR/PR conflict, the
// response carries the live stream handle.
func (f *Framework) Request(subject, streamName, action string, userQuery *xacmlplus.UserQuery) (*xacmlplus.AccessResponse, error) {
	return f.PEP.HandleRequest(xacml.NewRequest(subject, streamName, action), userQuery)
}

// Subscribe attaches a consumer to a granted stream handle.
func (f *Framework) Subscribe(handle string) (*runtime.Subscription, error) {
	return f.Runtime.Subscribe(handle)
}

// Publish appends a tuple to a registered stream via the shard queues;
// all continuous queries over it are applied by the shard worker.
func (f *Framework) Publish(streamName string, t stream.Tuple) error {
	return f.Runtime.Publish(streamName, t)
}

// PublishBatch appends a batch of tuples in one call, returning how
// many were accepted under the configured backpressure policy.
func (f *Framework) PublishBatch(streamName string, ts []stream.Tuple) (int, error) {
	return f.Runtime.PublishBatch(streamName, ts)
}

// PublishBatchVerdict appends a batch of tuples and reports the full
// admission verdict (offered / accepted / quota-shed).
func (f *Framework) PublishBatchVerdict(streamName string, ts []stream.Tuple) (runtime.PublishVerdict, error) {
	return f.Runtime.PublishBatchVerdict(streamName, ts)
}

// Reconfigure atomically swaps a registered stream's priority class
// and token-bucket quota without re-registering it, returning the
// previous configuration (see runtime.Reconfigure for the semantics).
func (f *Framework) Reconfigure(streamName string, cfg runtime.StreamConfig) (runtime.StreamConfig, error) {
	return f.Runtime.Reconfigure(streamName, cfg)
}

// StreamAdmission reports a stream's current class/quota.
func (f *Framework) StreamAdmission(streamName string) (runtime.StreamConfig, error) {
	return f.Runtime.StreamAdmission(streamName)
}

// Flush blocks until all published tuples have been processed.
func (f *Framework) Flush() { f.Runtime.Flush() }

// Stats snapshots the ingest runtime (per-shard queue depth,
// throughput, drop counters).
func (f *Framework) Stats() metrics.RuntimeStats { return f.Runtime.Stats() }

// Release gives up a user's grant on a stream.
func (f *Framework) Release(subject, streamName string) error {
	return f.PEP.Release(subject, streamName)
}

// RequireHandle is a convenience that fails unless the response issued
// a handle, formatting warnings into the error.
func RequireHandle(resp *xacmlplus.AccessResponse, err error) (*xacmlplus.AccessResponse, error) {
	if err != nil {
		return resp, err
	}
	if !resp.Granted() {
		return resp, fmt.Errorf("core: access not granted (decision=%s verdict=%s warnings=%v)",
			resp.Decision, resp.Verdict, resp.Warnings)
	}
	return resp, nil
}
