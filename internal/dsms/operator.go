package dsms

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/stream"
)

// operator is a runtime instance of a Box bound to a concrete input
// schema. Operators are single-goroutine state machines: the engine
// guarantees process is never called concurrently for one operator.
type operator interface {
	// process consumes one input tuple and returns zero or more output
	// tuples.
	process(t stream.Tuple) ([]stream.Tuple, error)
	// outSchema is the operator's output schema.
	outSchema() *stream.Schema
}

// newOperator instantiates the runtime for a box.
func newOperator(b *Box, in *stream.Schema) (operator, error) {
	out, err := b.OutputSchema(in)
	if err != nil {
		return nil, err
	}
	switch b.Kind {
	case BoxFilter:
		return &filterOp{cond: b.Condition, schema: in}, nil
	case BoxMap:
		return &mapOp{attrs: b.Attrs, in: in, out: out}, nil
	case BoxAggregate:
		return newAggregateOp(b, in, out)
	default:
		return nil, fmt.Errorf("dsms: invalid box kind")
	}
}

// buildPipeline instantiates the whole chain for a graph.
func buildPipeline(g *QueryGraph, in *stream.Schema) ([]operator, *stream.Schema, error) {
	ops := make([]operator, 0, len(g.Boxes))
	cur := in
	for _, b := range g.Boxes {
		op, err := newOperator(b, cur)
		if err != nil {
			return nil, nil, err
		}
		ops = append(ops, op)
		cur = op.outSchema()
	}
	return ops, cur, nil
}

// runPipeline pushes one tuple through a chain of operators.
func runPipeline(ops []operator, t stream.Tuple) ([]stream.Tuple, error) {
	batch := []stream.Tuple{t}
	for _, op := range ops {
		var next []stream.Tuple
		for _, tu := range batch {
			out, err := op.process(tu)
			if err != nil {
				return nil, err
			}
			next = append(next, out...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		batch = next
	}
	return batch, nil
}

// filterOp drops tuples that do not satisfy the condition.
type filterOp struct {
	cond   expr.Node
	schema *stream.Schema
}

func (f *filterOp) process(t stream.Tuple) ([]stream.Tuple, error) {
	if f.cond == nil {
		return []stream.Tuple{t}, nil
	}
	ok, err := expr.Eval(f.cond, f.schema, t)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return []stream.Tuple{t}, nil
}

func (f *filterOp) outSchema() *stream.Schema { return f.schema }

// mapOp projects tuples onto a subset of attributes.
type mapOp struct {
	attrs []string
	in    *stream.Schema
	out   *stream.Schema
}

func (m *mapOp) process(t stream.Tuple) ([]stream.Tuple, error) {
	p, err := t.Project(m.in, m.attrs)
	if err != nil {
		return nil, err
	}
	return []stream.Tuple{p}, nil
}

func (m *mapOp) outSchema() *stream.Schema { return m.out }

// aggregateOp maintains the sliding window and emits one output tuple
// per window close.
type aggregateOp struct {
	win    WindowSpec
	aggs   []AggSpec
	poss   []int // attribute positions in input schema
	types  []stream.FieldType
	in     *stream.Schema
	out    *stream.Schema
	buf    []stream.Tuple
	tstart int64 // start of current time window (millis); -1 = unset
	skip   int64 // tuples still to discard after a hop (step > size)
}

func newAggregateOp(b *Box, in, out *stream.Schema) (*aggregateOp, error) {
	op := &aggregateOp{win: b.Window, aggs: b.Aggs, in: in, out: out, tstart: -1}
	for _, a := range b.Aggs {
		pos, ft, ok := in.Lookup(a.Attr)
		if !ok {
			return nil, fmt.Errorf("dsms: aggregate references unknown attribute %q", a.Attr)
		}
		op.poss = append(op.poss, pos)
		op.types = append(op.types, ft)
	}
	return op, nil
}

func (a *aggregateOp) outSchema() *stream.Schema { return a.out }

func (a *aggregateOp) process(t stream.Tuple) ([]stream.Tuple, error) {
	if a.win.Type == WindowTuple {
		return a.processTupleWindow(t)
	}
	return a.processTimeWindow(t)
}

// processTupleWindow: emit when the buffer holds Size tuples, then
// slide by Step. When Step exceeds Size (hopping windows) the tuples
// between consecutive windows are discarded via the skip counter.
func (a *aggregateOp) processTupleWindow(t stream.Tuple) ([]stream.Tuple, error) {
	if a.skip > 0 {
		a.skip--
		return nil, nil
	}
	a.buf = append(a.buf, t)
	if int64(len(a.buf)) < a.win.Size {
		return nil, nil
	}
	ot, err := a.emit(a.buf[:a.win.Size])
	if err != nil {
		return nil, err
	}
	if a.win.Step >= int64(len(a.buf)) {
		a.skip = a.win.Step - int64(len(a.buf))
		a.buf = a.buf[:0]
	} else {
		a.buf = append(a.buf[:0:0], a.buf[a.win.Step:]...)
	}
	return []stream.Tuple{ot}, nil
}

// processTimeWindow: windows cover [tstart, tstart+Size) of arrival
// time; a window closes when a tuple at or past its end arrives.
func (a *aggregateOp) processTimeWindow(t stream.Tuple) ([]stream.Tuple, error) {
	ts := t.ArrivalMillis
	if a.tstart < 0 {
		a.tstart = ts
	}
	var out []stream.Tuple
	for ts >= a.tstart+a.win.Size {
		// Close the current window.
		var window []stream.Tuple
		for _, bt := range a.buf {
			if bt.ArrivalMillis >= a.tstart && bt.ArrivalMillis < a.tstart+a.win.Size {
				window = append(window, bt)
			}
		}
		if len(window) > 0 {
			ot, err := a.emit(window)
			if err != nil {
				return nil, err
			}
			out = append(out, ot)
		}
		a.tstart += a.win.Step
		// Evict tuples that can no longer participate in any window.
		keep := a.buf[:0]
		for _, bt := range a.buf {
			if bt.ArrivalMillis >= a.tstart {
				keep = append(keep, bt)
			}
		}
		a.buf = keep
	}
	a.buf = append(a.buf, t)
	return out, nil
}

// emit computes one output tuple over the window contents.
func (a *aggregateOp) emit(window []stream.Tuple) (stream.Tuple, error) {
	vals := make([]stream.Value, len(a.aggs))
	for i, spec := range a.aggs {
		v, err := computeAggregate(spec.Func, window, a.poss[i], a.types[i])
		if err != nil {
			return stream.Tuple{}, err
		}
		// Coerce to declared output type (e.g. avg of ints -> double).
		want := a.out.Field(i).Type
		if !v.IsNull() && v.Type() != want {
			cv, err := v.CoerceTo(want)
			if err == nil {
				v = cv
			}
		}
		vals[i] = v
	}
	out := stream.NewTuple(vals...)
	if n := len(window); n > 0 {
		out.ArrivalMillis = window[n-1].ArrivalMillis
		out.Seq = window[n-1].Seq
	}
	return out, nil
}
