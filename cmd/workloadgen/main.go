// Command workloadgen materialises the §4.2 workload on disk in the
// paper's format: "Each continuous query corresponds to three files in
// the experiment: (1) a StreamSQL script as the input to the
// direct-query system; (2) a XACML policy file whose obligations form
// the query graph exactly as that in the above StreamSQL script;
// (3) a XACML request file for requesting data streams, which may also
// have a user query embedded inside."
//
//	workloadgen -out ./workload [-scale 10] [-seed 2012]
//
// writes policies/policyNNNN.xml, queries/queryNNNN.sql,
// requests/requestNNNN.xml (+ userqueryNNNN.xml when present) and
// sequence files for the unique and Zipf orders.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "workload", "output directory")
	scale := flag.Int("scale", 1, "shrink the Table 3 workload by this factor")
	seed := flag.Int64("seed", 2012, "workload seed")
	flag.Parse()

	p := workload.TableThree()
	if *scale > 1 {
		p = workload.Scaled(*scale)
	}
	p.Seed = *seed
	w, err := workload.Generate(p)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	dirs := []string{"policies", "queries", "requests"}
	for _, d := range dirs {
		if err := os.MkdirAll(filepath.Join(*out, d), 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for i, xmlDoc := range w.PolicyXML {
		path := filepath.Join(*out, "policies", fmt.Sprintf("policy%04d.xml", i))
		if err := os.WriteFile(path, []byte(xmlDoc), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	withUQ := 0
	for _, item := range w.Items {
		sqlPath := filepath.Join(*out, "queries", fmt.Sprintf("query%04d.sql", item.Index))
		if err := os.WriteFile(sqlPath, []byte(item.Script+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
		reqPath := filepath.Join(*out, "requests", fmt.Sprintf("request%04d.xml", item.Index))
		if err := os.WriteFile(reqPath, []byte(item.RequestXML), 0o644); err != nil {
			log.Fatal(err)
		}
		if item.UserQueryXML != "" {
			withUQ++
			uqPath := filepath.Join(*out, "requests", fmt.Sprintf("userquery%04d.xml", item.Index))
			if err := os.WriteFile(uqPath, []byte(item.UserQueryXML), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	writeSeq := func(name string, seq []int) {
		lines := make([]string, len(seq))
		for i, idx := range seq {
			lines[i] = strconv.Itoa(idx)
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	writeSeq("sequence-unique.txt", w.UniqueSequence())
	writeSeq("sequence-zipf.txt", w.ZipfSequence(p.NRequests, p.Seed+1))

	fmt.Printf("workloadgen: wrote %d policies, %d queries, %d requests (%d with user queries) to %s\n",
		len(w.PolicyXML), len(w.Items), len(w.Items), withUQ, *out)
}
