package xacml

import (
	"strings"
	"testing"
)

// fig2Obligations is the obligations block of the paper's Fig 2, wrapped
// in a minimal policy for the NEA/LTA example.
const fig2Policy = `
<Policy PolicyId="nea:weather:lta" RuleCombiningAlgId="urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable">
  <Description>NEA weather stream for the LTA warning system</Description>
  <Target>
    <Subjects>
      <Subject>
        <SubjectMatch MatchId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
          <AttributeValue DataType="http://www.w3.org/2001/XMLSchema#string">LTA</AttributeValue>
          <SubjectAttributeDesignator AttributeId="urn:oasis:names:tc:xacml:1.0:subject:subject-id"
            DataType="http://www.w3.org/2001/XMLSchema#string"/>
        </SubjectMatch>
      </Subject>
    </Subjects>
    <Resources>
      <Resource>
        <ResourceMatch MatchId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
          <AttributeValue DataType="http://www.w3.org/2001/XMLSchema#string">weather</AttributeValue>
          <ResourceAttributeDesignator AttributeId="urn:oasis:names:tc:xacml:1.0:resource:resource-id"
            DataType="http://www.w3.org/2001/XMLSchema#string"/>
        </ResourceMatch>
      </Resource>
    </Resources>
    <Actions>
      <Action>
        <ActionMatch MatchId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
          <AttributeValue DataType="http://www.w3.org/2001/XMLSchema#string">read</AttributeValue>
          <ActionAttributeDesignator AttributeId="urn:oasis:names:tc:xacml:1.0:action:action-id"
            DataType="http://www.w3.org/2001/XMLSchema#string"/>
        </ActionMatch>
      </Action>
    </Actions>
  </Target>
  <Rule RuleId="permit-lta" Effect="Permit"/>
  <Obligations>
    <Obligation ObligationId="exacml:obligation:stream-filter" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-filter-condition-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate &gt; 5</AttributeAssignment>
    </Obligation>
    <Obligation ObligationId="exacml:obligation:stream-map" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">samplingtime</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">windspeed</AttributeAssignment>
    </Obligation>
    <Obligation ObligationId="exacml:obligation:stream-window" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-step-id"
        DataType="http://www.w3.org/2001/XMLSchema#integer">2</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-size-id"
        DataType="http://www.w3.org/2001/XMLSchema#integer">5</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-type-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">tuple</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">samplingtime:lastval</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate:avg</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">windspeed:max</AttributeAssignment>
    </Obligation>
  </Obligations>
</Policy>`

func TestParseFig2Policy(t *testing.T) {
	p, err := ParsePolicy([]byte(fig2Policy))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if p.PolicyID != "nea:weather:lta" {
		t.Errorf("PolicyID = %q", p.PolicyID)
	}
	if len(p.Obligations.Obligations) != 3 {
		t.Fatalf("obligations = %d, want 3", len(p.Obligations.Obligations))
	}
	mapOb := p.Obligations.Obligations[1]
	attrs := mapOb.Values("pCloud:obligation:stream-map-attribute-id")
	if len(attrs) != 3 || attrs[0] != "samplingtime" || attrs[2] != "windspeed" {
		t.Errorf("map attrs = %v", attrs)
	}
	winOb := p.Obligations.Obligations[2]
	if winOb.Value("pCloud:obligation:stream-window-size-id") != "5" {
		t.Errorf("window size = %q", winOb.Value("pCloud:obligation:stream-window-size-id"))
	}
	if got := winOb.Values("pCloud:obligation:stream-window-attr-id"); len(got) != 3 || got[1] != "rainrate:avg" {
		t.Errorf("window attrs = %v", got)
	}
}

func TestEvaluateFig2Policy(t *testing.T) {
	p, err := ParsePolicy([]byte(fig2Policy))
	if err != nil {
		t.Fatal(err)
	}
	// Matching request: Permit with 3 obligations.
	res, err := EvaluatePolicy(p, NewRequest("LTA", "weather", "read"))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Decision != Permit {
		t.Fatalf("decision = %v, want Permit", res.Decision)
	}
	if len(res.Obligations) != 3 {
		t.Errorf("obligations = %d", len(res.Obligations))
	}
	// Wrong subject: NotApplicable.
	res, _ = EvaluatePolicy(p, NewRequest("EMA", "weather", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("wrong subject: %v", res.Decision)
	}
	// Wrong resource.
	res, _ = EvaluatePolicy(p, NewRequest("LTA", "gps", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("wrong resource: %v", res.Decision)
	}
	// Wrong action.
	res, _ = EvaluatePolicy(p, NewRequest("LTA", "weather", "write"))
	if res.Decision != NotApplicable {
		t.Errorf("wrong action: %v", res.Decision)
	}
}

func TestPolicyXMLRoundTrip(t *testing.T) {
	p, err := ParsePolicy([]byte(fig2Policy))
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := ParsePolicy(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	res, err := EvaluatePolicy(p2, NewRequest("LTA", "weather", "read"))
	if err != nil || res.Decision != Permit {
		t.Errorf("round-tripped policy: (%v,%v)", res.Decision, err)
	}
	if len(p2.Obligations.Obligations) != 3 {
		t.Errorf("round-tripped obligations = %d", len(p2.Obligations.Obligations))
	}
}

func TestBuilderPolicy(t *testing.T) {
	p := NewPermitPolicy("p1", NewTarget("alice", "res1", "read"),
		Obligation{
			ObligationID: "ob1",
			FulfillOn:    EffectPermit,
			Assignments:  []AttributeAssignment{NewStringAssignment("k", "v")},
		})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res, err := EvaluatePolicy(p, NewRequest("alice", "res1", "read"))
	if err != nil || res.Decision != Permit || len(res.Obligations) != 1 {
		t.Fatalf("builder policy eval: (%+v,%v)", res, err)
	}
	// Round trip through XML.
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := ParsePolicy(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	res, err = EvaluatePolicy(p2, NewRequest("alice", "res1", "read"))
	if err != nil || res.Decision != Permit {
		t.Errorf("round trip eval: (%v,%v)", res.Decision, err)
	}
	res, _ = EvaluatePolicy(p2, NewRequest("bob", "res1", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("bob should not match: %v", res.Decision)
	}
}

func TestRuleCombiningAlgorithms(t *testing.T) {
	permitRule := Rule{RuleID: "p", Effect: EffectPermit}
	denyRule := Rule{RuleID: "d", Effect: EffectDeny}
	req := NewRequest("s", "r", "a")

	mk := func(alg string, rules ...Rule) *Policy {
		return &Policy{PolicyID: "t", RuleCombiningAlgID: alg, Rules: rules}
	}
	cases := []struct {
		alg   string
		rules []Rule
		want  Decision
	}{
		{RuleCombFirstApplicable, []Rule{denyRule, permitRule}, Deny},
		{RuleCombFirstApplicable, []Rule{permitRule, denyRule}, Permit},
		{RuleCombPermitOverrides, []Rule{denyRule, permitRule}, Permit},
		{RuleCombDenyOverrides, []Rule{permitRule, denyRule}, Deny},
		{RuleCombPermitOverrides, []Rule{denyRule}, Deny},
		{RuleCombDenyOverrides, []Rule{permitRule}, Permit},
	}
	for _, c := range cases {
		res, err := EvaluatePolicy(mk(c.alg, c.rules...), req)
		if err != nil {
			t.Fatalf("%s: %v", c.alg, err)
		}
		if res.Decision != c.want {
			t.Errorf("%s with %d rules = %v, want %v", c.alg, len(c.rules), res.Decision, c.want)
		}
	}
}

func TestRuleLevelTargets(t *testing.T) {
	p := &Policy{
		PolicyID:           "rt",
		RuleCombiningAlgID: RuleCombFirstApplicable,
		Rules: []Rule{
			{RuleID: "deny-bob", Effect: EffectDeny, Target: NewTarget("bob", "", "")},
			{RuleID: "permit-all", Effect: EffectPermit},
		},
	}
	res, _ := EvaluatePolicy(p, NewRequest("bob", "r", "a"))
	if res.Decision != Deny {
		t.Errorf("bob = %v, want Deny", res.Decision)
	}
	res, _ = EvaluatePolicy(p, NewRequest("alice", "r", "a"))
	if res.Decision != Permit {
		t.Errorf("alice = %v, want Permit", res.Decision)
	}
}

func TestObligationFulfillOn(t *testing.T) {
	p := &Policy{
		PolicyID:           "ob",
		RuleCombiningAlgID: RuleCombFirstApplicable,
		Rules:              []Rule{{RuleID: "d", Effect: EffectDeny}},
		Obligations: Obligations{Obligations: []Obligation{
			{ObligationID: "on-permit", FulfillOn: EffectPermit},
			{ObligationID: "on-deny", FulfillOn: EffectDeny},
		}},
	}
	res, _ := EvaluatePolicy(p, NewRequest("s", "r", "a"))
	if res.Decision != Deny || len(res.Obligations) != 1 || res.Obligations[0].ObligationID != "on-deny" {
		t.Errorf("deny obligations = %+v", res)
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []*Policy{
		{PolicyID: "", Rules: []Rule{{Effect: EffectPermit}}},
		{PolicyID: "x"},
		{PolicyID: "x", RuleCombiningAlgID: "bogus", Rules: []Rule{{Effect: EffectPermit}}},
		{PolicyID: "x", Rules: []Rule{{Effect: "Maybe"}}},
		{PolicyID: "x", Rules: []Rule{{Effect: EffectPermit}}, Obligations: Obligations{Obligations: []Obligation{{}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d should fail validation", i)
		}
	}
}

func TestPDPStore(t *testing.T) {
	pdp := NewPDP()
	p1 := NewPermitPolicy("p1", NewTarget("alice", "weather", "read"))
	p2 := NewPermitPolicy("p2", NewTarget("bob", "gps", "read"))
	pdp.AddPolicy(p1)
	pdp.AddPolicy(p2)
	if pdp.Count() != 2 {
		t.Fatalf("Count = %d", pdp.Count())
	}
	if got := pdp.PolicyIDs(); len(got) != 2 || got[0] != "p1" {
		t.Errorf("PolicyIDs = %v", got)
	}
	res, err := pdp.Evaluate(NewRequest("alice", "weather", "read"))
	if err != nil || res.Decision != Permit || res.PolicyID != "p1" {
		t.Fatalf("alice: (%+v,%v)", res, err)
	}
	res, _ = pdp.Evaluate(NewRequest("carol", "weather", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("carol = %v", res.Decision)
	}
	if !pdp.RemovePolicy("p1") {
		t.Error("RemovePolicy(p1) should report true")
	}
	if pdp.RemovePolicy("p1") {
		t.Error("second remove should report false")
	}
	res, _ = pdp.Evaluate(NewRequest("alice", "weather", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("after removal: %v", res.Decision)
	}
	if _, ok := pdp.Policy("p2"); !ok {
		t.Error("p2 should remain")
	}
}

func TestPDPLoadPolicyReplaces(t *testing.T) {
	pdp := NewPDP()
	if _, err := pdp.LoadPolicy([]byte(fig2Policy)); err != nil {
		t.Fatalf("LoadPolicy: %v", err)
	}
	if _, err := pdp.LoadPolicy([]byte(fig2Policy)); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if pdp.Count() != 1 {
		t.Errorf("Count after reload = %d, want 1", pdp.Count())
	}
	if _, err := pdp.LoadPolicy([]byte("<oops")); err == nil {
		t.Error("bad XML must fail")
	}
}

func TestPDPDenyPolicy(t *testing.T) {
	pdp := NewPDP()
	deny := &Policy{
		PolicyID:           "deny-carol",
		RuleCombiningAlgID: RuleCombFirstApplicable,
		Target:             NewTarget("carol", "", ""),
		Rules:              []Rule{{RuleID: "d", Effect: EffectDeny}},
	}
	pdp.AddPolicy(deny)
	pdp.AddPolicy(NewPermitPolicy("permit-carol", NewTarget("carol", "", "")))
	// Permit-overrides across policies: the permit wins.
	res, err := pdp.Evaluate(NewRequest("carol", "r", "a"))
	if err != nil || res.Decision != Permit {
		t.Errorf("permit-overrides: (%v,%v)", res.Decision, err)
	}
	pdp.RemovePolicy("permit-carol")
	res, _ = pdp.Evaluate(NewRequest("carol", "r", "a"))
	if res.Decision != Deny {
		t.Errorf("deny remains: %v", res.Decision)
	}
}

func TestRequestXMLRoundTrip(t *testing.T) {
	r := NewRequest("LTA", "weather", "read")
	r.AddSubjectAttribute("role", "agency")
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	r2, err := ParseRequest(data)
	if err != nil {
		t.Fatalf("ParseRequest: %v\n%s", err, data)
	}
	if r2.SubjectID() != "LTA" || r2.ResourceID() != "weather" || r2.ActionID() != "read" {
		t.Errorf("round trip ids: %q %q %q", r2.SubjectID(), r2.ResourceID(), r2.ActionID())
	}
	if !strings.Contains(string(data), "role") {
		t.Error("extra subject attribute lost")
	}
}

func TestMatchIgnoreCase(t *testing.T) {
	m := NewSubjectMatch("LTA")
	m.MatchID = MatchStringEqualIgnoreCase
	p := NewPermitPolicy("ic", &Target{Subjects: []TargetEntry{{Matches: []Match{m}}}})
	res, err := EvaluatePolicy(p, NewRequest("lta", "r", "a"))
	if err != nil || res.Decision != Permit {
		t.Errorf("ignore-case: (%v,%v)", res.Decision, err)
	}
}

func TestUnsupportedMatchID(t *testing.T) {
	m := NewSubjectMatch("x")
	m.MatchID = "urn:bogus"
	p := NewPermitPolicy("b", &Target{Subjects: []TargetEntry{{Matches: []Match{m}}}})
	if _, err := EvaluatePolicy(p, NewRequest("x", "r", "a")); err == nil {
		t.Error("unsupported MatchId must error")
	}
}

func TestEvaluateNilRequest(t *testing.T) {
	pdp := NewPDP()
	if _, err := pdp.Evaluate(nil); err == nil {
		t.Error("nil request must error")
	}
}
