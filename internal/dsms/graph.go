package dsms

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/stream"
)

// BoxKind enumerates the operator kinds used by the paper (§2.1): the
// Aurora model supports more boxes, but eXACML+ restricts itself to
// filter, map and window-based aggregation.
type BoxKind int

const (
	// BoxInvalid is the zero BoxKind.
	BoxInvalid BoxKind = iota
	// BoxFilter is selection: tuples not satisfying the condition are
	// dropped.
	BoxFilter
	// BoxMap is projection onto a set of attributes.
	BoxMap
	// BoxAggregate applies aggregate functions over a sliding window.
	BoxAggregate
)

// String names the kind.
func (k BoxKind) String() string {
	switch k {
	case BoxFilter:
		return "filter"
	case BoxMap:
		return "map"
	case BoxAggregate:
		return "aggregate"
	default:
		return "invalid"
	}
}

// Box is one operator of a query graph. Exactly the fields relevant to
// its Kind are set:
//
//   - BoxFilter: Condition
//   - BoxMap: Attrs (projected attribute names, in output order)
//   - BoxAggregate: Window and Aggs
type Box struct {
	Kind      BoxKind
	Condition expr.Node
	Attrs     []string
	Window    WindowSpec
	Aggs      []AggSpec
}

// NewFilterBox builds a filter operator.
func NewFilterBox(cond expr.Node) *Box {
	return &Box{Kind: BoxFilter, Condition: cond}
}

// NewMapBox builds a map (projection) operator.
func NewMapBox(attrs ...string) *Box {
	return &Box{Kind: BoxMap, Attrs: attrs}
}

// NewAggregateBox builds a window aggregation operator.
func NewAggregateBox(w WindowSpec, aggs ...AggSpec) *Box {
	return &Box{Kind: BoxAggregate, Window: w, Aggs: aggs}
}

// Clone deep-copies the box.
func (b *Box) Clone() *Box {
	if b == nil {
		return nil
	}
	c := &Box{Kind: b.Kind, Window: b.Window}
	if b.Condition != nil {
		c.Condition = expr.Clone(b.Condition)
	}
	c.Attrs = append([]string(nil), b.Attrs...)
	c.Aggs = append([]AggSpec(nil), b.Aggs...)
	return c
}

// String renders a readable operator description.
func (b *Box) String() string {
	switch b.Kind {
	case BoxFilter:
		return fmt.Sprintf("Filter(%s)", b.Condition)
	case BoxMap:
		return fmt.Sprintf("Map(%s)", strings.Join(b.Attrs, ", "))
	case BoxAggregate:
		specs := make([]string, len(b.Aggs))
		for i, a := range b.Aggs {
			specs[i] = a.String()
		}
		return fmt.Sprintf("Aggregate(%s; %s)", b.Window, strings.Join(specs, ", "))
	default:
		return "InvalidBox"
	}
}

// OutputSchema computes the schema produced by the box from its input
// schema, validating attribute references and types.
func (b *Box) OutputSchema(in *stream.Schema) (*stream.Schema, error) {
	switch b.Kind {
	case BoxFilter:
		if b.Condition != nil {
			if err := expr.Validate(b.Condition, in); err != nil {
				return nil, fmt.Errorf("dsms: filter: %w", err)
			}
		}
		return in, nil
	case BoxMap:
		if len(b.Attrs) == 0 {
			return nil, fmt.Errorf("dsms: map with empty attribute set")
		}
		out, err := in.Project(b.Attrs)
		if err != nil {
			return nil, fmt.Errorf("dsms: map: %w", err)
		}
		return out, nil
	case BoxAggregate:
		if err := b.Window.Validate(); err != nil {
			return nil, err
		}
		if len(b.Aggs) == 0 {
			return nil, fmt.Errorf("dsms: aggregate with no aggregation attributes")
		}
		fields := make([]stream.Field, 0, len(b.Aggs))
		for _, a := range b.Aggs {
			_, ft, ok := in.Lookup(a.Attr)
			if !ok {
				return nil, fmt.Errorf("dsms: aggregate references unknown attribute %q", a.Attr)
			}
			ot, err := a.OutputType(ft)
			if err != nil {
				return nil, err
			}
			fields = append(fields, stream.Field{Name: a.OutputName(), Type: ot})
		}
		out, err := stream.NewSchema(fields...)
		if err != nil {
			return nil, fmt.Errorf("dsms: aggregate output schema: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("dsms: invalid box kind")
	}
}

// QueryGraph is a continuous query over one input stream: an ordered
// chain of boxes applied to every arriving tuple (the paper's graphs are
// linear chains filter→map→aggregate; the type supports any chain).
type QueryGraph struct {
	// Input is the name of the source stream.
	Input string
	// Boxes are applied in order.
	Boxes []*Box
}

// NewQueryGraph builds a graph over the named input stream.
func NewQueryGraph(input string, boxes ...*Box) *QueryGraph {
	return &QueryGraph{Input: input, Boxes: boxes}
}

// Clone deep-copies the graph.
func (g *QueryGraph) Clone() *QueryGraph {
	if g == nil {
		return nil
	}
	c := &QueryGraph{Input: g.Input, Boxes: make([]*Box, len(g.Boxes))}
	for i, b := range g.Boxes {
		c.Boxes[i] = b.Clone()
	}
	return c
}

// Validate type-checks the whole chain against the input schema and
// returns the final output schema.
func (g *QueryGraph) Validate(in *stream.Schema) (*stream.Schema, error) {
	if g.Input == "" {
		return nil, fmt.Errorf("dsms: query graph has no input stream")
	}
	cur := in
	for i, b := range g.Boxes {
		out, err := b.OutputSchema(cur)
		if err != nil {
			return nil, fmt.Errorf("dsms: box %d (%s): %w", i, b.Kind, err)
		}
		cur = out
	}
	return cur, nil
}

// Filter returns the first filter box, or nil.
func (g *QueryGraph) Filter() *Box { return g.firstOf(BoxFilter) }

// Map returns the first map box, or nil.
func (g *QueryGraph) Map() *Box { return g.firstOf(BoxMap) }

// Aggregate returns the first aggregate box, or nil.
func (g *QueryGraph) Aggregate() *Box { return g.firstOf(BoxAggregate) }

func (g *QueryGraph) firstOf(k BoxKind) *Box {
	for _, b := range g.Boxes {
		if b.Kind == k {
			return b
		}
	}
	return nil
}

// String renders "input -> box -> box -> ...".
func (g *QueryGraph) String() string {
	parts := make([]string, 0, len(g.Boxes)+1)
	parts = append(parts, g.Input)
	for _, b := range g.Boxes {
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " -> ")
}
