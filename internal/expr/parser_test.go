package expr

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestParseSimple(t *testing.T) {
	n, err := Parse("rainrate > 5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s, ok := n.(*Simple)
	if !ok {
		t.Fatalf("want *Simple, got %T", n)
	}
	if s.Attr != "rainrate" || s.Op != OpGT || s.Value.Int() != 5 {
		t.Errorf("parsed %+v", s)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]Op{
		"a < 1": OpLT, "a > 1": OpGT, "a <= 1": OpLE, "a >= 1": OpGE,
		"a = 1": OpEQ, "a == 1": OpEQ, "a != 1": OpNE, "a <> 1": OpNE,
	}
	for src, want := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := n.(*Simple).Op; got != want {
			t.Errorf("Parse(%q).Op = %v, want %v", src, got, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// NOT > AND > OR
	n := MustParse("a > 1 OR b > 2 AND c > 3")
	or, ok := n.(*Or)
	if !ok {
		t.Fatalf("top should be OR, got %T", n)
	}
	if _, ok := or.R.(*And); !ok {
		t.Fatalf("right of OR should be AND, got %T", or.R)
	}
	n2 := MustParse("NOT a > 1 AND b > 2")
	and, ok := n2.(*And)
	if !ok {
		t.Fatalf("top should be AND, got %T", n2)
	}
	if _, ok := and.L.(*Not); !ok {
		t.Fatalf("left of AND should be NOT, got %T", and.L)
	}
}

func TestParseParens(t *testing.T) {
	n := MustParse("(a > 1 OR b > 2) AND c > 3")
	and, ok := n.(*And)
	if !ok {
		t.Fatalf("top should be AND, got %T", n)
	}
	if _, ok := and.L.(*Or); !ok {
		t.Fatalf("left should be OR, got %T", and.L)
	}
}

func TestParseStringLiteral(t *testing.T) {
	n := MustParse("city = 'Sing''apore'")
	s := n.(*Simple)
	if s.Value.Str() != "Sing'apore" {
		t.Errorf("string literal = %q", s.Value.Str())
	}
	if _, err := Parse("city > 'abc'"); err == nil {
		t.Error("string with > must be rejected")
	}
}

func TestParseDoubleQuoted(t *testing.T) {
	n := MustParse(`city = "KL"`)
	if n.(*Simple).Value.Str() != "KL" {
		t.Error("double-quoted literal")
	}
}

func TestParseNumbers(t *testing.T) {
	n := MustParse("a >= -2.5e2")
	v := n.(*Simple).Value
	if v.Type() != stream.TypeDouble || v.Double() != -250 {
		t.Errorf("value = %v", v)
	}
	n = MustParse("a = 42")
	if n.(*Simple).Value.Type() != stream.TypeInt {
		t.Error("integer literal should parse as int")
	}
}

func TestParseBooleans(t *testing.T) {
	n := MustParse("TRUE OR flag = false")
	or := n.(*Or)
	if !isTrue(or.L) {
		t.Error("left should be TRUE literal")
	}
	if or.R.(*Simple).Value.Type() != stream.TypeBool {
		t.Error("flag literal should be bool")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a >", "> 5", "a 5", "(a > 1", "a > 1)", "a ! 5",
		"a > 'str'", "a > 1 AND", "'lone'", "a = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTripString(t *testing.T) {
	srcs := []string{
		"rainrate > 5",
		"(a > 20) AND (a < 30)",
		"NOT (a != 40)",
		"(x >= 1) OR (y = 'abc')",
	}
	for _, src := range srcs {
		n := MustParse(src)
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", n.String(), src, err)
		}
		if !Equal(n, n2) {
			t.Errorf("round trip mismatch for %q: %q vs %q", src, n, n2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	n := MustParse("a > 1 AND b < 2")
	c := Clone(n).(*And)
	c.L.(*Simple).Attr = "zzz"
	if n.(*And).L.(*Simple).Attr != "a" {
		t.Error("Clone must deep copy")
	}
}

func TestAttributes(t *testing.T) {
	n := MustParse("a > 1 AND (B < 2 OR NOT c = 3)")
	got := Attributes(n)
	for _, want := range []string{"a", "b", "c"} {
		if !got[want] {
			t.Errorf("missing attribute %q in %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("attributes = %v", got)
	}
}

func TestNewAndNewOr(t *testing.T) {
	if !isTrue(NewAnd()) {
		t.Error("empty AND is TRUE")
	}
	if !isFalse(NewOr()) {
		t.Error("empty OR is FALSE")
	}
	s := MustParse("a > 1")
	if NewAnd(s) != s {
		t.Error("singleton AND is identity")
	}
	n := NewAnd(s, MustParse("b > 2"), MustParse("c > 3"))
	if !strings.Contains(n.String(), "AND") {
		t.Error("3-way AND should chain")
	}
}
