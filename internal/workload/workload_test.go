package workload

import (
	"strings"
	"testing"

	"repro/internal/dsms"
	"repro/internal/streamql"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func quickParams() Params {
	p := TableThree()
	p.NPolicies = 40
	p.NRequests = 60
	p.MaxRank = 20
	for i := range p.Dist {
		p.Dist[i] = 4
	}
	return p
}

func TestTableThreeValues(t *testing.T) {
	p := TableThree()
	if p.NDirectQueries != 1500 || p.NPolicies != 1000 || p.NRequests != 1500 {
		t.Errorf("counts: %+v", p)
	}
	if p.Alpha != 0.223 || p.MaxRank != 300 {
		t.Errorf("zipf params: %+v", p)
	}
	want := [7]int{160, 170, 130, 124, 254, 290, 372}
	if p.Dist != want {
		t.Errorf("dist = %v", p.Dist)
	}
	sum := 0
	for _, d := range p.Dist {
		sum += d
	}
	if sum != 1500 {
		t.Errorf("dist sum = %d, want 1500", sum)
	}
}

func TestGenerateWorkload(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(w.Policies) != 40 || len(w.Items) != 60 || len(w.Streams) != 40 {
		t.Fatalf("sizes: %d policies %d items %d streams", len(w.Policies), len(w.Items), len(w.Streams))
	}
	for i, item := range w.Items {
		if item.PolicyIndex != i%40 {
			t.Errorf("item %d policy index %d", i, item.PolicyIndex)
		}
		if item.Script == "" || item.RequestXML == "" {
			t.Errorf("item %d missing script or request", i)
		}
		// Scripts compile.
		if _, err := streamql.CompileString(item.Script); err != nil {
			t.Errorf("item %d script: %v\n%s", i, err, item.Script)
		}
	}
}

func TestGeneratedPoliciesParseAndPermit(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, xmlDoc := range w.PolicyXML {
		pol, err := xacml.ParsePolicy([]byte(xmlDoc))
		if err != nil {
			t.Fatalf("policy %d: %v", i, err)
		}
		if pol.PolicyID != w.Policies[i].PolicyID {
			t.Errorf("policy %d id %q", i, pol.PolicyID)
		}
	}
	// Each item's request is permitted by its policy.
	pdp := xacml.NewPDP()
	for _, pol := range w.Policies {
		pdp.AddPolicy(pol)
	}
	for i, item := range w.Items {
		req, err := xacml.ParseRequest([]byte(item.RequestXML))
		if err != nil {
			t.Fatalf("item %d request: %v", i, err)
		}
		res, err := pdp.Evaluate(req)
		if err != nil {
			t.Fatalf("item %d evaluate: %v", i, err)
		}
		if res.Decision != xacml.Permit {
			t.Fatalf("item %d decision = %v", i, res.Decision)
		}
		if res.PolicyID != w.Policies[item.PolicyIndex].PolicyID {
			t.Errorf("item %d matched %q, want policy %d", i, res.PolicyID, item.PolicyIndex)
		}
	}
}

// TestUserQueriesAreCompatible: every embedded user query verifies OK
// against its policy graph (no NR/PR in the granted workload).
func TestUserQueriesAreCompatible(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	withUQ := 0
	for i, item := range w.Items {
		if item.UserQueryXML == "" {
			continue
		}
		withUQ++
		uq, err := xacmlplus.ParseUserQuery([]byte(item.UserQueryXML))
		if err != nil {
			t.Fatalf("item %d user query: %v", i, err)
		}
		ug, err := uq.ToGraph()
		if err != nil {
			t.Fatalf("item %d user graph: %v", i, err)
		}
		pg, err := xacmlplus.ObligationsToGraph(item.Resource, w.Policies[item.PolicyIndex].Obligations.Obligations)
		if err != nil {
			t.Fatal(err)
		}
		res, err := xacmlplus.CheckGraphs(pg, ug)
		if err != nil {
			t.Fatalf("item %d check: %v", i, err)
		}
		if res.Verdict.String() != "OK" {
			t.Errorf("item %d verdict %v: %v", i, res.Verdict, res.Warnings)
		}
		if _, err := xacmlplus.MergeGraphs(pg, ug); err != nil {
			t.Errorf("item %d merge: %v", i, err)
		}
	}
	if withUQ == 0 {
		t.Error("no items carried user queries")
	}
}

func TestCompositionSplit(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Composition]int{}
	for _, pol := range w.Policies {
		g, err := xacmlplus.ObligationsToGraph("s", pol.Obligations.Obligations)
		if err != nil {
			t.Fatal(err)
		}
		var c Composition
		hasF, hasM, hasA := g.Filter() != nil, g.Map() != nil, g.Aggregate() != nil
		switch {
		case hasF && hasM && hasA:
			c = CompFBMBAB
		case hasF && hasM:
			c = CompFBMB
		case hasF && hasA:
			c = CompFBAB
		case hasM && hasA:
			c = CompMBAB
		case hasF:
			c = CompFB
		case hasM:
			c = CompMB
		case hasA:
			c = CompAB
		}
		counts[c]++
	}
	if len(counts) < 5 {
		t.Errorf("expected a variety of compositions, got %v", counts)
	}
}

func TestUniqueSequence(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	seq := w.UniqueSequence()
	if len(seq) != len(w.Items) {
		t.Fatalf("len = %d", len(seq))
	}
	seen := map[int]bool{}
	for _, idx := range seq {
		if seen[idx] {
			t.Fatal("duplicate in unique sequence")
		}
		seen[idx] = true
	}
}

func TestZipfSequence(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	seq := w.ZipfSequence(3000, 99)
	if len(seq) != 3000 {
		t.Fatalf("len = %d", len(seq))
	}
	counts := map[int]int{}
	for _, idx := range seq {
		if idx < 0 || idx >= len(w.Items) {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	// Support limited to maxRank distinct items.
	if len(counts) > quickParams().MaxRank {
		t.Errorf("distinct items %d > maxRank %d", len(counts), quickParams().MaxRank)
	}
	// Skewed: the most popular item appears more than the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := 3000 / len(counts)
	if max <= mean {
		t.Errorf("max count %d not above mean %d; distribution not skewed", max, mean)
	}
	// Deterministic for a fixed seed.
	seq2 := w.ZipfSequence(3000, 99)
	for i := range seq {
		if seq[i] != seq2[i] {
			t.Fatal("Zipf sequence not deterministic")
		}
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(10)
	if p.NPolicies != 100 || p.NRequests != 150 || p.MaxRank != 30 {
		t.Errorf("scaled = %+v", p)
	}
	if Scaled(1).NPolicies != 1000 {
		t.Error("factor 1 is identity")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Items {
		if a.Items[i].Script != b.Items[i].Script ||
			a.Items[i].UserQueryXML != b.Items[i].UserQueryXML {
			t.Fatalf("item %d differs between runs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{}); err == nil {
		t.Error("zero params must fail")
	}
}

func TestDirectScriptsDeclareStreams(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range w.Items {
		if !strings.Contains(item.Script, "CREATE INPUT STREAM "+item.Resource) {
			t.Fatalf("script for %s lacks input declaration:\n%s", item.Resource, item.Script)
		}
	}
}

func TestRandomGraphsRunnable(t *testing.T) {
	w, err := Generate(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	// Every generated graph executes on synthetic tuples without error.
	for i, item := range w.Items[:10] {
		c, err := streamql.CompileString(item.Script)
		if err != nil {
			t.Fatal(err)
		}
		tuples := make([]int, 0)
		_ = tuples
		in := makeTuples(50)
		if _, _, err := dsms.RunGraphOnSlice(c.Graph, w.Schema, in); err != nil {
			t.Errorf("item %d graph run: %v", i, err)
		}
	}
}
