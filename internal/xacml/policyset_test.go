package xacml

import (
	"testing"
)

func permitFor(id, subject string) *Policy {
	return NewPermitPolicy(id, NewTarget(subject, "", ""))
}

func denyFor(id, subject string) *Policy {
	return &Policy{
		PolicyID:           id,
		RuleCombiningAlgID: RuleCombFirstApplicable,
		Target:             NewTarget(subject, "", ""),
		Rules:              []Rule{{RuleID: id + ":deny", Effect: EffectDeny}},
	}
}

func TestPolicySetFirstApplicable(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set1",
		PolicyCombiningAlgID: PolicyCombFirstApplicable,
		Policies:             []*Policy{denyFor("d", "alice"), permitFor("p", "alice")},
	}
	res, err := EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err != nil || res.Decision != Deny {
		t.Errorf("first-applicable: (%v,%v)", res.Decision, err)
	}
	res, _ = EvaluatePolicySet(ps, NewRequest("bob", "r", "a"))
	if res.Decision != NotApplicable {
		t.Errorf("non-matching subject: %v", res.Decision)
	}
}

func TestPolicySetPermitOverrides(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set2",
		PolicyCombiningAlgID: PolicyCombPermitOverrides,
		Policies:             []*Policy{denyFor("d", "alice"), permitFor("p", "alice")},
	}
	res, err := EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err != nil || res.Decision != Permit {
		t.Errorf("permit-overrides: (%v,%v)", res.Decision, err)
	}
}

func TestPolicySetDenyOverrides(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set3",
		PolicyCombiningAlgID: PolicyCombDenyOverrides,
		Policies:             []*Policy{permitFor("p", "alice"), denyFor("d", "alice")},
	}
	res, err := EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err != nil || res.Decision != Deny {
		t.Errorf("deny-overrides: (%v,%v)", res.Decision, err)
	}
}

func TestPolicySetOnlyOneApplicable(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set4",
		PolicyCombiningAlgID: PolicyCombOnlyOneApplicable,
		Policies:             []*Policy{permitFor("p1", "alice"), permitFor("p2", "bob")},
	}
	res, err := EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err != nil || res.Decision != Permit || res.PolicyID != "p1" {
		t.Errorf("single applicable: (%+v,%v)", res, err)
	}
	// Two applicable -> Indeterminate + error.
	ps.Policies = []*Policy{permitFor("p1", "alice"), denyFor("p2", "alice")}
	res, err = EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err == nil || res.Decision != Indeterminate {
		t.Errorf("two applicable: (%v,%v)", res.Decision, err)
	}
}

func TestPolicySetTargetGates(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set5",
		PolicyCombiningAlgID: PolicyCombPermitOverrides,
		Target:               NewTarget("", "weather", ""),
		Policies:             []*Policy{permitFor("p", "alice")},
	}
	res, _ := EvaluatePolicySet(ps, NewRequest("alice", "weather", "read"))
	if res.Decision != Permit {
		t.Errorf("matching set target: %v", res.Decision)
	}
	res, _ = EvaluatePolicySet(ps, NewRequest("alice", "gps", "read"))
	if res.Decision != NotApplicable {
		t.Errorf("non-matching set target: %v", res.Decision)
	}
}

func TestPolicySetObligationsAppended(t *testing.T) {
	inner := NewPermitPolicy("p", NewTarget("alice", "", ""),
		Obligation{ObligationID: "inner", FulfillOn: EffectPermit})
	ps := &PolicySet{
		PolicySetID:          "set6",
		PolicyCombiningAlgID: PolicyCombFirstApplicable,
		Policies:             []*Policy{inner},
		Obligations: Obligations{Obligations: []Obligation{
			{ObligationID: "outer", FulfillOn: EffectPermit},
			{ObligationID: "outer-deny", FulfillOn: EffectDeny},
		}},
	}
	res, err := EvaluatePolicySet(ps, NewRequest("alice", "r", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obligations) != 2 {
		t.Fatalf("obligations = %v", res.Obligations)
	}
	if res.Obligations[0].ObligationID != "inner" || res.Obligations[1].ObligationID != "outer" {
		t.Errorf("obligation order: %v", res.Obligations)
	}
}

func TestPolicySetXMLRoundTrip(t *testing.T) {
	ps := &PolicySet{
		PolicySetID:          "set7",
		PolicyCombiningAlgID: PolicyCombDenyOverrides,
		Target:               NewTarget("", "weather", ""),
		Policies:             []*Policy{permitFor("p", "alice"), denyFor("d", "bob")},
	}
	data, err := ps.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicySet(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if back.PolicySetID != "set7" || len(back.Policies) != 2 {
		t.Errorf("round trip: %+v", back)
	}
	res, err := EvaluatePolicySet(back, NewRequest("alice", "weather", "read"))
	if err != nil || res.Decision != Permit {
		t.Errorf("round-tripped eval: (%v,%v)", res.Decision, err)
	}
}

func TestPolicySetValidate(t *testing.T) {
	bad := []*PolicySet{
		{PolicySetID: "", Policies: []*Policy{permitFor("p", "")}},
		{PolicySetID: "x"},
		{PolicySetID: "x", PolicyCombiningAlgID: "bogus", Policies: []*Policy{permitFor("p", "")}},
		{PolicySetID: "x", Policies: []*Policy{{PolicyID: "broken"}}},
	}
	for i, ps := range bad {
		if err := ps.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := ParsePolicySet([]byte("<oops")); err == nil {
		t.Error("bad XML must fail")
	}
}

func TestPDPAddPolicySet(t *testing.T) {
	pdp := NewPDP()
	ps := &PolicySet{
		PolicySetID:          "owner-set",
		PolicyCombiningAlgID: PolicyCombFirstApplicable,
		Policies:             []*Policy{permitFor("p1", "alice"), permitFor("p2", "bob")},
	}
	ids, err := pdp.AddPolicySet(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "owner-set/p1" {
		t.Errorf("ids = %v", ids)
	}
	res, err := pdp.Evaluate(NewRequest("bob", "r", "a"))
	if err != nil || res.Decision != Permit || res.PolicyID != "owner-set/p2" {
		t.Errorf("flattened set eval: (%+v,%v)", res, err)
	}
	// Removing one member behaves like any policy removal.
	if !pdp.RemovePolicy("owner-set/p2") {
		t.Error("remove member")
	}
	res, _ = pdp.Evaluate(NewRequest("bob", "r", "a"))
	if res.Decision != NotApplicable {
		t.Errorf("after member removal: %v", res.Decision)
	}
	if _, err := pdp.AddPolicySet(&PolicySet{}); err == nil {
		t.Error("invalid set must fail")
	}
}
