// Package metrics provides the measurement plumbing of the evaluation
// (§4.2) and of the ingest runtime. For the paper's experiments it
// holds per-phase latency samples (PDP / query-graph manipulation /
// engine), CDF computation for the Fig 6 plots and summary statistics
// for the policy-loading experiment. For the runtime it defines the
// RuntimeStats snapshot — per-shard queue/throughput counters
// (ShardStat) plus the admission-control accounting per stream
// (StreamStat) and per priority class (ClassStat) — whose rows satisfy
// offered == ingested + dropped + errors once the runtime has flushed.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is one request's measured latencies.
type Sample struct {
	// Seq is the request's position in the sequence.
	Seq int
	// Total is the end-to-end response time seen by the client.
	Total time.Duration
	// PDP, Graph, Engine are the server-side phase breakdowns (zero
	// for direct queries or cache hits).
	PDP    time.Duration
	Graph  time.Duration
	Engine time.Duration
	// CacheHit marks proxy cache hits.
	CacheHit bool
}

// Series is a named collection of samples.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(sm Sample) { s.Samples = append(s.Samples, sm) }

// Totals extracts the total latencies in sequence order.
func (s *Series) Totals() []time.Duration {
	out := make([]time.Duration, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Total
	}
	return out
}

// CDF is an empirical distribution: sorted values with cumulative
// fractions.
type CDF struct {
	// Values are sorted ascending.
	Values []time.Duration
}

// NewCDF sorts a copy of the data.
func NewCDF(values []time.Duration) CDF {
	vs := make([]time.Duration, len(values))
	copy(vs, values)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return CDF{Values: vs}
}

// FromSeries builds the CDF of a series' totals.
func FromSeries(s *Series) CDF { return NewCDF(s.Totals()) }

// At returns the cumulative fraction at or below v.
func (c CDF) At(v time.Duration) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	i := sort.Search(len(c.Values), func(i int) bool { return c.Values[i] > v })
	return float64(i) / float64(len(c.Values))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c CDF) Quantile(q float64) time.Duration {
	if len(c.Values) == 0 {
		return 0
	}
	if q <= 0 {
		return c.Values[0]
	}
	if q >= 1 {
		return c.Values[len(c.Values)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.Values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.Values[idx]
}

// Median is the 0.5 quantile.
func (c CDF) Median() time.Duration { return c.Quantile(0.5) }

// Points samples the CDF at n log-spaced values between the min and
// max, returning (value, fraction) rows — the shape of the Fig 6 plots
// (log-scale x axis from 0.01s to 10s).
func (c CDF) Points(n int) [][2]float64 {
	if len(c.Values) == 0 || n < 2 {
		return nil
	}
	lo := float64(c.Values[0])
	hi := float64(c.Values[len(c.Values)-1])
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		hi = lo * 10
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		v := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		out = append(out, [2]float64{v / float64(time.Second), c.At(time.Duration(v))})
	}
	return out
}

// Stats are summary statistics of a duration sample.
type Stats struct {
	N         int
	Mean, Std time.Duration
	Min, Max  time.Duration
	Median    time.Duration
	P90, P99  time.Duration
}

// Summarize computes stats over the values.
func Summarize(values []time.Duration) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	c := NewCDF(values)
	var sum, sumsq float64
	for _, v := range values {
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	n := float64(len(values))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		N:      len(values),
		Mean:   time.Duration(mean),
		Std:    time.Duration(math.Sqrt(variance)),
		Min:    c.Values[0],
		Max:    c.Values[len(c.Values)-1],
		Median: c.Median(),
		P90:    c.Quantile(0.9),
		P99:    c.Quantile(0.99),
	}
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean=%v std=%v min=%v median=%v p90=%v p99=%v max=%v",
		s.N, s.Mean.Round(time.Microsecond), s.Std.Round(time.Microsecond),
		s.Min.Round(time.Microsecond), s.Median.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// RenderCDFTable prints aligned CDF columns for several series, the
// textual equivalent of the Fig 6 plots.
func RenderCDFTable(points int, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "time(s)")
	cdfs := make([]CDF, len(series))
	for i, s := range series {
		cdfs[i] = FromSeries(s)
		fmt.Fprintf(&b, "%-22s", s.Name)
	}
	b.WriteByte('\n')
	// Use the union of value ranges, log-spaced.
	var lo, hi time.Duration
	for _, c := range cdfs {
		if len(c.Values) == 0 {
			continue
		}
		if lo == 0 || c.Values[0] < lo {
			lo = c.Values[0]
		}
		if c.Values[len(c.Values)-1] > hi {
			hi = c.Values[len(c.Values)-1]
		}
	}
	if lo <= 0 {
		lo = time.Microsecond
	}
	if hi <= lo {
		hi = lo * 10
	}
	for i := 0; i < points; i++ {
		v := float64(lo) * math.Pow(float64(hi)/float64(lo), float64(i)/float64(points-1))
		fmt.Fprintf(&b, "%-12.5f", v/float64(time.Second))
		for _, c := range cdfs {
			fmt.Fprintf(&b, "%-22.4f", c.At(time.Duration(v)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ImprovementHistogram compares two matched series (same request order)
// and buckets the relative improvement of b over a: the §4.2 claim is
// that caching gives over 100% improvement for ~40% of requests and at
// least 10% for the rest.
func ImprovementHistogram(slow, fast *Series) (over100, over10, under10 float64) {
	n := len(slow.Samples)
	if len(fast.Samples) < n {
		n = len(fast.Samples)
	}
	if n == 0 {
		return 0, 0, 0
	}
	c100, c10, rest := 0, 0, 0
	for i := 0; i < n; i++ {
		s := float64(slow.Samples[i].Total)
		f := float64(fast.Samples[i].Total)
		if f <= 0 {
			c100++
			continue
		}
		imp := (s - f) / f
		switch {
		case imp >= 1.0:
			c100++
		case imp >= 0.10:
			c10++
		default:
			rest++
		}
	}
	total := float64(n)
	return float64(c100) / total, float64(c10) / total, float64(rest) / total
}
