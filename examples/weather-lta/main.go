// The paper's running example (§2.2, §3.1): the National Environmental
// Agency (NEA) shares its weather stream with the Land Transport
// Authority (LTA) under a fine-grained policy (Fig 1 / Fig 2); the LTA
// later refines its view with a customised query (Fig 4(a)); the
// framework merges both into one StreamSQL script (Fig 4(b)) and serves
// the stream.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/source"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func neaPolicy() *xacml.Policy {
	// The §2.2 policy: only samplingtime, rain rate and wind speed are
	// visible; windows of size 5 advance 2 with lastValue/average/
	// maximum; data visible only when rain rate > 5 mm/h.
	return xacml.NewPermitPolicy("nea:weather:lta",
		xacml.NewTarget("LTA", "weather", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition, "rainrate > 5"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationMap,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "samplingtime"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "rainrate"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "windspeed"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationWindow,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewIntAssignment(xacmlplus.AttrWindowStep, "2"),
				xacml.NewIntAssignment(xacmlplus.AttrWindowSize, "5"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowType, "tuple"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "samplingtime:lastval"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "rainrate:avg"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "windspeed:max"),
			},
		},
	)
}

// fig4aUserQuery is the LTA's later refinement: only rain over 50 mm/h
// matters, in windows of 10.
const fig4aUserQuery = `
<UserQuery>
  <Stream name="weather" />
  <Filter><FilterCondition>RainRate &gt; 50</FilterCondition></Filter>
  <Map><Attribute>RainRate</Attribute></Map>
  <Aggregation>
    <WindowType>tuple</WindowType>
    <WindowSize>10</WindowSize>
    <WindowStep>2</WindowStep>
    <Attribute>avg(RainRate)</Attribute>
  </Aggregation>
</UserQuery>`

func main() {
	fw := core.New("nea-cloud")
	defer fw.Close()
	if err := fw.RegisterStream("weather", source.WeatherSchema()); err != nil {
		log.Fatal(err)
	}

	pol := neaPolicy()
	fmt.Println("=== Fig 2: the NEA policy (obligations excerpt) ===")
	xmlData, _ := pol.Marshal()
	fmt.Printf("%s\n\n", xmlData)
	if err := fw.AddPolicy(pol); err != nil {
		log.Fatal(err)
	}

	// Fig 1: the query graph compiled from the obligations alone.
	policyGraph, err := xacmlplus.ObligationsToGraph("weather", pol.Obligations.Obligations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Fig 1: Aurora query graph from the policy ===")
	fmt.Printf("%s\n\n", policyGraph)

	// The LTA's request with the Fig 4(a) user query.
	uq, err := xacmlplus.ParseUserQuery([]byte(fig4aUserQuery))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := core.RequireHandle(fw.Request("LTA", "weather", "read", uq))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Fig 4(b): merged StreamSQL sent to the engine ===")
	fmt.Printf("%s\n\n", resp.Script)
	fmt.Printf("handle: %s (verdict %s)\n\n", resp.Handle, resp.Verdict)

	// Feed a storm through the stream and watch the LTA's view.
	sub, err := fw.Subscribe(resp.Handle)
	if err != nil {
		log.Fatal(err)
	}
	station := source.NewWeatherStation(0, 30000, 99)
	schema := source.WeatherSchema()
	heavy := 0
	for i := 0; i < 3000; i++ {
		t := station.Next()
		if v, _ := t.Get(schema, "rainrate"); v.Double() > 50 {
			heavy++
		}
		if err := fw.Publish("weather", t); err != nil {
			log.Fatal(err)
		}
	}
	fw.Flush()
	fmt.Printf("published 3000 samples, %d with rainrate > 50\n", heavy)
	fmt.Println("LTA receives averaged windows of heavy rain only:")
	n := 0
	for len(sub.C) > 0 {
		t := <-sub.C
		if n < 6 {
			fmt.Printf("  window avg rainrate = %s\n", t.Values[0])
		}
		n++
	}
	fmt.Printf("  ... %d windows total\n", n)
}
