package xacml

import (
	"fmt"
	"sort"
	"sync"
)

// PDP is a Policy Decision Point: a thread-safe policy store plus
// request evaluation across all loaded policies (permit-overrides at
// the policy level, matching the framework's behaviour: any policy that
// permits grants access and supplies its obligations).
type PDP struct {
	mu       sync.RWMutex
	policies map[string]*Policy
	order    []string // insertion order for deterministic evaluation
}

// NewPDP creates an empty PDP.
func NewPDP() *PDP {
	return &PDP{policies: map[string]*Policy{}}
}

// LoadPolicy parses and stores a policy document. Loading a policy with
// an existing id replaces it (a policy update per §3.3).
func (p *PDP) LoadPolicy(data []byte) (*Policy, error) {
	pol, err := ParsePolicy(data)
	if err != nil {
		return nil, err
	}
	p.AddPolicy(pol)
	return pol, nil
}

// AddPolicy stores an already-parsed policy, replacing any same-id one.
func (p *PDP) AddPolicy(pol *Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.policies[pol.PolicyID]; !exists {
		p.order = append(p.order, pol.PolicyID)
	}
	p.policies[pol.PolicyID] = pol
}

// RemovePolicy deletes a policy by id, reporting whether it existed.
func (p *PDP) RemovePolicy(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.policies[id]; !ok {
		return false
	}
	delete(p.policies, id)
	for i, oid := range p.order {
		if oid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return true
}

// Policy returns a loaded policy by id.
func (p *PDP) Policy(id string) (*Policy, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pol, ok := p.policies[id]
	return pol, ok
}

// PolicyIDs lists loaded policy ids, sorted.
func (p *PDP) PolicyIDs() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.policies))
	for id := range p.policies {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count reports the number of loaded policies.
func (p *PDP) Count() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.policies)
}

// Evaluate runs the request against every loaded policy in insertion
// order with permit-overrides semantics: the first Permit wins and its
// obligations are returned; otherwise an explicit Deny wins over
// NotApplicable.
func (p *PDP) Evaluate(req *Request) (Result, error) {
	if req == nil {
		return Result{Decision: Indeterminate}, fmt.Errorf("xacml: nil request")
	}
	p.mu.RLock()
	pols := make([]*Policy, 0, len(p.order))
	for _, id := range p.order {
		pols = append(pols, p.policies[id])
	}
	p.mu.RUnlock()

	final := Result{Decision: NotApplicable}
	for _, pol := range pols {
		res, err := EvaluatePolicy(pol, req)
		if err != nil {
			return Result{Decision: Indeterminate, PolicyID: pol.PolicyID}, err
		}
		switch res.Decision {
		case Permit:
			return res, nil
		case Deny:
			if final.Decision == NotApplicable {
				final = res
			}
		}
	}
	return final, nil
}
