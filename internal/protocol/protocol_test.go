package protocol

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m, err := Encode("test", 7, map[string]int{"x": 1})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Type != "test" || got.ID != 7 {
		t.Errorf("got %+v", got)
	}
	payload, err := Decode[map[string]int](got)
	if err != nil || payload["x"] != 1 {
		t.Errorf("payload = %v (%v)", payload, err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header must fail")
	}
	// Header says 100 bytes, body empty.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 100})); err == nil {
		t.Error("truncated body must fail")
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
}

// TestOversizedCallIsNotConnClosed checks that refusing an oversized
// request frame is reported as a frame-size error, not connection
// death, and that the connection stays usable afterwards.
func TestOversizedCallIsNotConnClosed(t *testing.T) {
	srv := NewServer()
	srv.Handle("echo", func(m *Message, _ *Conn) (any, error) {
		return Decode[string](m)
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	huge := strings.Repeat("x", MaxFrameSize+1)
	_, err = cli.Call("echo", huge)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized call = %v, want ErrFrameTooLarge", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("oversized call wrongly reported as connection death: %v", err)
	}
	resp, err := CallDecode[string](cli, "echo", "still alive")
	if err != nil || resp != "still alive" {
		t.Fatalf("connection unusable after oversized call: %q, %v", resp, err)
	}
}

func TestServerClientRPC(t *testing.T) {
	srv := NewServer()
	srv.Handle("echo", func(m *Message, _ *Conn) (any, error) {
		in, err := Decode[string](m)
		if err != nil {
			return nil, err
		}
		return "echo:" + in, nil
	})
	srv.Handle("fail", func(m *Message, _ *Conn) (any, error) {
		return nil, fmt.Errorf("boom")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	out, err := CallDecode[string](cli, "echo", "hello")
	if err != nil || out != "echo:hello" {
		t.Errorf("echo: (%q,%v)", out, err)
	}
	if _, err := cli.Call("fail", nil); err == nil || err.Error() != "boom" {
		t.Errorf("error propagation: %v", err)
	}
	if _, err := cli.Call("unknown", nil); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv := NewServer()
	srv.Handle("id", func(m *Message, _ *Conn) (any, error) {
		return Decode[int](m)
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			out, err := CallDecode[int](cli, "id", n)
			if err != nil {
				errs <- err
				return
			}
			if out != n {
				errs <- fmt.Errorf("got %d want %d", out, n)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerPush(t *testing.T) {
	srv := NewServer()
	srv.Handle("subscribe", func(m *Message, conn *Conn) (any, error) {
		ack, _ := Encode("subscribe.ok", m.ID, struct{}{})
		if err := conn.Send(ack); err != nil {
			return nil, err
		}
		for i := 0; i < 3; i++ {
			push, _ := Encode("tick", m.ID, i)
			if err := conn.Send(push); err != nil {
				return nil, ErrHijacked
			}
		}
		return nil, ErrHijacked
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got := make(chan int, 3)
	cli.SetPush(func(m *Message) {
		if m.Type == "tick" {
			n, _ := Decode[int](m)
			got <- n
		}
	})
	if _, err := cli.Call("subscribe", nil); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for want := 0; want < 3; want++ {
		if n := <-got; n != want {
			t.Errorf("tick %d, want %d", n, want)
		}
	}
}

func TestClientFailsPendingOnClose(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Handle("block", func(m *Message, _ *Conn) (any, error) {
		<-block
		return struct{}{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call("block", nil)
		done <- err
	}()
	// Kill the connection while the call is pending.
	cli.Close()
	if err := <-done; err == nil {
		t.Error("pending call must fail when the client closes")
	}
	if _, err := cli.Call("block", nil); err == nil {
		t.Error("calls after close must fail")
	}
}

func TestServerDelayHook(t *testing.T) {
	srv := NewServer()
	called := make(chan struct{}, 1)
	srv.Delay = func(reqBytes, respBytes int) {
		select {
		case called <- struct{}{}:
		default:
		}
	}
	srv.Handle("ping", func(m *Message, _ *Conn) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call("ping", nil); err != nil {
		t.Fatal(err)
	}
	<-called
}

func TestServerHandlerPanicRecovered(t *testing.T) {
	srv := NewServer()
	srv.Handle("boom", func(m *Message, _ *Conn) (any, error) {
		panic("kaboom")
	})
	srv.Handle("ping", func(m *Message, _ *Conn) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call("boom", nil); err == nil {
		t.Fatal("panic should surface as an error response")
	}
	// The connection and server survive.
	out, err := CallDecode[string](cli, "ping", nil)
	if err != nil || out != "pong" {
		t.Fatalf("server should survive a handler panic: (%q,%v)", out, err)
	}
}
