package runtime

import (
	"fmt"
	"sync"

	"repro/internal/dsms"
	"repro/internal/stream"
	"repro/internal/streamql"
)

// Deployment is a continuous query running on the runtime. For a
// single-shard stream it wraps one engine deployment and reuses its
// handle; for a partitioned stream the same graph runs on every shard
// and the runtime issues a synthetic handle whose subscription merges
// all per-shard outputs.
type Deployment struct {
	// ID is the runtime-unique query identifier ("rqNNNNN").
	ID string
	// Handle is the URI under which the output stream is served.
	Handle string
	// Input is the source stream name.
	Input string
	// OutputSchema is the schema of emitted tuples.
	OutputSchema *stream.Schema
	// Parts are the per-shard engine deployments (one entry for
	// single-shard streams).
	Parts []dsms.Deployment

	shards []int
}

// Deploy validates a query graph against its input stream and starts
// its continuous execution on the owning shard (or on every shard, for
// partitioned streams).
func (rt *Runtime) Deploy(g *dsms.QueryGraph) (Deployment, error) {
	if g == nil {
		return Deployment{}, fmt.Errorf("runtime: nil query graph")
	}
	r, err := rt.routeFor(g.Input)
	if err != nil {
		return Deployment{}, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return Deployment{}, errClosed
	}
	rt.nextDep++
	id := fmt.Sprintf("rq%05d", rt.nextDep)
	dep := Deployment{ID: id, Input: r.name}
	if r.keyIdx < 0 {
		d, err := rt.shards[r.shard].eng.Deploy(g)
		if err != nil {
			return Deployment{}, err
		}
		dep.Handle = d.Handle
		dep.OutputSchema = d.OutputSchema
		dep.Parts = []dsms.Deployment{d}
		dep.shards = []int{r.shard}
	} else {
		dep.Handle = fmt.Sprintf("xrt://%s/streams/%s", rt.name, id)
		for i, s := range rt.shards {
			d, err := s.eng.Deploy(g) // Deploy clones the graph; reuse is safe
			if err != nil {
				for j, p := range dep.Parts {
					_ = rt.shards[j].eng.Withdraw(p.ID)
				}
				return Deployment{}, fmt.Errorf("runtime: shard %d: %w", i, err)
			}
			dep.OutputSchema = d.OutputSchema
			dep.Parts = append(dep.Parts, d)
			dep.shards = append(dep.shards, i)
		}
	}
	rt.deps[id] = &dep
	rt.deps[dep.Handle] = &dep
	return dep, nil
}

// DeployScript compiles a StreamSQL script and deploys it, implementing
// the PEP-facing engine surface. When the script embeds its input
// declaration, the declared schema is verified against the registered
// stream, mirroring the dsmsd server.
func (rt *Runtime) DeployScript(script string) (string, string, error) {
	c, err := streamql.CompileString(script)
	if err != nil {
		return "", "", err
	}
	if c.Schema != nil {
		actual, err := rt.StreamSchema(c.Input)
		if err != nil {
			return "", "", err
		}
		if !actual.Equal(c.Schema) {
			return "", "", fmt.Errorf("runtime: script schema for %q does not match registered stream", c.Input)
		}
	}
	dep, err := rt.Deploy(c.Graph)
	if err != nil {
		return "", "", err
	}
	return dep.ID, dep.Handle, nil
}

// lookupDep resolves a runtime id or handle to its deployment.
func (rt *Runtime) lookupDep(idOrHandle string) (*Deployment, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	d, ok := rt.deps[idOrHandle]
	return d, ok
}

// Query returns the deployment for a runtime id or handle.
func (rt *Runtime) Query(idOrHandle string) (Deployment, bool) {
	d, ok := rt.lookupDep(idOrHandle)
	if !ok {
		return Deployment{}, false
	}
	return *d, true
}

// Withdraw stops a deployed query by runtime id or handle. Handles
// issued directly by a shard engine are routed by trial, so the PEP's
// withdraw-by-whatever-it-stored behaviour keeps working.
func (rt *Runtime) Withdraw(idOrHandle string) error {
	rt.mu.Lock()
	d, ok := rt.deps[idOrHandle]
	if ok {
		delete(rt.deps, d.ID)
		delete(rt.deps, d.Handle)
	}
	rt.mu.Unlock()
	if !ok {
		for _, s := range rt.shards {
			if err := s.eng.Withdraw(idOrHandle); err == nil {
				return nil
			}
		}
		return fmt.Errorf("runtime: unknown query %q", idOrHandle)
	}
	var err error
	for i, p := range d.Parts {
		if werr := rt.shards[d.shards[i]].eng.Withdraw(p.ID); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// subPart ties one underlying engine subscription to its engine for
// clean detach.
type subPart struct {
	eng *dsms.Engine
	key string
	sub *dsms.Subscription
}

// Subscription delivers a runtime query's output tuples. For queries on
// partitioned streams it merges the per-shard output streams into one
// channel; per-key ordering is preserved (all tuples of a key flow
// through one shard), global interleaving across keys is not.
type Subscription struct {
	C <-chan stream.Tuple

	parts  []subPart
	merged chan stream.Tuple
	once   sync.Once
}

// Dropped sums the tuples discarded across the underlying
// subscriptions because the consumer lagged.
func (s *Subscription) Dropped() uint64 {
	var n uint64
	for _, p := range s.parts {
		n += p.sub.Dropped()
	}
	return n
}

// Close detaches the subscription from every shard; C is closed once
// all buffered tuples have been forwarded.
func (s *Subscription) Close() {
	s.once.Do(func() {
		for _, p := range s.parts {
			p.eng.Unsubscribe(p.key, p.sub)
		}
		if s.merged != nil {
			// Unblock forwarders stuck sending into the merged buffer
			// when the consumer is gone: drain until the fan-in
			// goroutine closes the channel.
			go func() {
				for range s.merged {
				}
			}()
		}
	})
}

// Subscribe attaches a consumer to a query's output by runtime id or
// handle (handles issued directly by shard engines also resolve).
func (rt *Runtime) Subscribe(idOrHandle string) (*Subscription, error) {
	d, ok := rt.lookupDep(idOrHandle)
	if !ok {
		for _, s := range rt.shards {
			if sub, err := s.eng.Subscribe(idOrHandle); err == nil {
				return &Subscription{C: sub.C, parts: []subPart{{eng: s.eng, key: idOrHandle, sub: sub}}}, nil
			}
		}
		return nil, fmt.Errorf("runtime: unknown query %q", idOrHandle)
	}
	if len(d.Parts) == 1 {
		eng := rt.shards[d.shards[0]].eng
		sub, err := eng.Subscribe(d.Parts[0].ID)
		if err != nil {
			return nil, err
		}
		return &Subscription{C: sub.C, parts: []subPart{{eng: eng, key: d.Parts[0].ID, sub: sub}}}, nil
	}
	// Attach every shard before starting any forwarder, so a mid-loop
	// failure can detach cleanly without leaking forwarder goroutines
	// blocked on the merged channel.
	out := make(chan stream.Tuple, dsms.DefaultSubscriptionBuffer)
	sub := &Subscription{C: out, merged: out}
	for i, p := range d.Parts {
		eng := rt.shards[d.shards[i]].eng
		es, err := eng.Subscribe(p.ID)
		if err != nil {
			sub.Close()
			return nil, err
		}
		sub.parts = append(sub.parts, subPart{eng: eng, key: p.ID, sub: es})
	}
	var wg sync.WaitGroup
	for _, p := range sub.parts {
		wg.Add(1)
		go func(es *dsms.Subscription) {
			defer wg.Done()
			for t := range es.C {
				out <- t
			}
		}(p.sub)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return sub, nil
}
