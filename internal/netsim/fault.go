package netsim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Fault injection: a Script fires named events (kill, restart,
// partition, heal, slow-link) at exact logical times — publish counts,
// not wall-clock — so a chaos run is reproducible tuple-for-tuple under
// -race and across machines. The test drives the clock by calling
// Advance once per published batch; events fire synchronously inside
// that call, on the driving goroutine, before the next publish is
// admitted.

// Event is one scheduled fault: at logical time At (the first Advance
// that reaches it), Do runs once on the advancing goroutine.
type Event struct {
	// At is the logical time the event fires at (inclusive).
	At uint64
	// Name labels the event in logs and assertions.
	Name string
	// Do applies the fault (kill a process, flip a Gate, ...).
	Do func()
}

// Script is a deterministic fault schedule over a logical clock.
// Events fire in (At, insertion) order; concurrent Advance calls are
// serialized, so each event fires exactly once.
type Script struct {
	mu     sync.Mutex
	events []Event
	fired  int
	now    uint64
}

// NewScript builds a schedule from the given events; they may be
// passed in any order and are sorted by At (stable, so same-time
// events keep their insertion order).
func NewScript(events ...Event) *Script {
	s := &Script{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	return s
}

// Advance moves the logical clock forward by n ticks and fires every
// event whose At has been reached, in order, synchronously. It returns
// the names of the events fired by this call (nil when none).
func (s *Script) Advance(n uint64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now += n
	var fired []string
	for s.fired < len(s.events) && s.events[s.fired].At <= s.now {
		ev := s.events[s.fired]
		s.fired++
		if ev.Do != nil {
			ev.Do()
		}
		fired = append(fired, ev.Name)
	}
	return fired
}

// Now reports the current logical time.
func (s *Script) Now() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Pending reports how many events have not fired yet.
func (s *Script) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events) - s.fired
}

// Done reports whether every event has fired.
func (s *Script) Done() bool { return s.Pending() == 0 }

// Gate is a switchable link condition a transport consults per
// message: a Script event flips it to partitioned (messages refused)
// or swaps in a slower Profile, and a later event heals it. The
// zero value is a healed, zero-delay link. All methods are safe for
// concurrent use with each other and with Script events.
type Gate struct {
	partitioned atomic.Bool
	profile     atomic.Pointer[Profile]
	refused     atomic.Uint64
}

// Partition cuts the link: Allow reports false until Heal.
func (g *Gate) Partition() { g.partitioned.Store(true) }

// Heal restores the link.
func (g *Gate) Heal() { g.partitioned.Store(false) }

// Partitioned reports the current link state.
func (g *Gate) Partitioned() bool { return g.partitioned.Load() }

// SetProfile swaps the delay profile applied to passing messages
// (nil = no delay); a Script event uses it to degrade a link mid-run.
func (g *Gate) SetProfile(p *Profile) { g.profile.Store(p) }

// Allow checks the link for one message of the given size: a
// partitioned link refuses it (counted), an open link applies the
// current profile's delay and lets it pass.
func (g *Gate) Allow(payloadBytes int) bool {
	if g.partitioned.Load() {
		g.refused.Add(1)
		return false
	}
	g.profile.Load().Apply(payloadBytes)
	return true
}

// Refused counts messages dropped while partitioned.
func (g *Gate) Refused() uint64 { return g.refused.Load() }
