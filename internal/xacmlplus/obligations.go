// Package xacmlplus implements the paper's core contribution: the
// XACML+ extension that encodes Aurora stream operators inside XACML
// obligations, the PEP that compiles obligations and user queries into
// query graphs, the §3.1 merge rules, the §3.5 NR/PR conflict detection,
// the §3.4 single-access guard against window-reconstruction attacks,
// and the §3.3 query-graph manager that withdraws graphs when their
// spawning policy is removed.
package xacmlplus

import (
	"fmt"
	"strconv"

	"repro/internal/dsms"
	"repro/internal/expr"
	"repro/internal/xacml"
)

// Obligation identifiers from Table 1 and attribute identifiers from
// Fig 2. The prototype uses both the exacml: and pCloud: prefixes for
// attribute ids; parsing accepts either, generation emits the pCloud:
// form shown in Fig 2.
const (
	// ObligationFilter marks a stream-filtering obligation.
	ObligationFilter = "exacml:obligation:stream-filter"
	// ObligationFilterAlt is the long form used in Table 1.
	ObligationFilterAlt = "exacml:obligation:stream-filtering"
	// ObligationMap marks a stream-mapping obligation.
	ObligationMap = "exacml:obligation:stream-map"
	// ObligationMapAlt is the long form used in Table 1.
	ObligationMapAlt = "exacml:obligation:stream-mapping"
	// ObligationWindow marks a window-aggregation obligation.
	ObligationWindow = "exacml:obligation:stream-window"
	// ObligationWindowAlt is the long form used in Table 1.
	ObligationWindowAlt = "exacml:obligation:stream-window-aggregation"

	// AttrFilterCondition carries the filter's boolean expression.
	AttrFilterCondition = "pCloud:obligation:stream-filter-condition-id"
	// AttrMapAttribute carries one projected attribute name (repeated).
	AttrMapAttribute = "pCloud:obligation:stream-map-attribute-id"
	// AttrWindowType carries "tuple" or "time".
	AttrWindowType = "pCloud:obligation:stream-window-type-id"
	// AttrWindowSize carries the window size.
	AttrWindowSize = "pCloud:obligation:stream-window-size-id"
	// AttrWindowStep carries the window advance step.
	AttrWindowStep = "pCloud:obligation:stream-window-step-id"
	// AttrWindowAttr carries one "attribute:function" pair (repeated).
	AttrWindowAttr = "pCloud:obligation:stream-window-attr-id"

	// exacml-prefixed aliases accepted on input.
	attrFilterConditionAlt = "exacml:obligation:stream-filter-condition-id"
	attrMapAttributeAlt    = "exacml:obligation:stream-map-attribute-id"
	attrWindowTypeAlt      = "exacml:obligation:stream-window-type-id"
	attrWindowSizeAlt      = "exacml:obligation:stream-window-size-id"
	attrWindowStepAlt      = "exacml:obligation:stream-window-step-id"
	attrWindowAttrAlt      = "exacml:obligation:stream-window-attr-id"
)

// values returns obligation values under either the pCloud: or exacml:
// attribute id spelling.
func values(o xacml.Obligation, primary, alt string) []string {
	out := o.Values(primary)
	out = append(out, o.Values(alt)...)
	return out
}

// ObligationsToGraph compiles the stream obligations of a Permit
// decision into the policy's Aurora query graph over the named stream,
// in the canonical order filter → map → window aggregation (Fig 1).
// Obligations with unrelated ids are ignored; malformed stream
// obligations are errors.
func ObligationsToGraph(streamName string, obligations []xacml.Obligation) (*dsms.QueryGraph, error) {
	g := dsms.NewQueryGraph(streamName)
	var filterBox, mapBox, aggBox *dsms.Box
	for _, o := range obligations {
		switch o.ObligationID {
		case ObligationFilter, ObligationFilterAlt:
			if filterBox != nil {
				return nil, fmt.Errorf("xacmlplus: duplicate filter obligation")
			}
			conds := values(o, AttrFilterCondition, attrFilterConditionAlt)
			if len(conds) == 0 {
				return nil, fmt.Errorf("xacmlplus: filter obligation without condition")
			}
			// Multiple condition assignments are AND-ed.
			nodes := make([]expr.Node, 0, len(conds))
			for _, c := range conds {
				n, err := expr.Parse(c)
				if err != nil {
					return nil, fmt.Errorf("xacmlplus: filter condition: %w", err)
				}
				nodes = append(nodes, n)
			}
			filterBox = dsms.NewFilterBox(expr.NewAnd(nodes...))
		case ObligationMap, ObligationMapAlt:
			if mapBox != nil {
				return nil, fmt.Errorf("xacmlplus: duplicate map obligation")
			}
			attrs := values(o, AttrMapAttribute, attrMapAttributeAlt)
			if len(attrs) == 0 {
				return nil, fmt.Errorf("xacmlplus: map obligation without attributes")
			}
			mapBox = dsms.NewMapBox(attrs...)
		case ObligationWindow, ObligationWindowAlt:
			if aggBox != nil {
				return nil, fmt.Errorf("xacmlplus: duplicate window obligation")
			}
			box, err := windowObligationToBox(o)
			if err != nil {
				return nil, err
			}
			aggBox = box
		}
	}
	if filterBox != nil {
		g.Boxes = append(g.Boxes, filterBox)
	}
	if mapBox != nil {
		g.Boxes = append(g.Boxes, mapBox)
	}
	if aggBox != nil {
		g.Boxes = append(g.Boxes, aggBox)
	}
	return g, nil
}

func windowObligationToBox(o xacml.Obligation) (*dsms.Box, error) {
	typeStr := firstNonEmpty(values(o, AttrWindowType, attrWindowTypeAlt))
	sizeStr := firstNonEmpty(values(o, AttrWindowSize, attrWindowSizeAlt))
	stepStr := firstNonEmpty(values(o, AttrWindowStep, attrWindowStepAlt))
	if typeStr == "" || sizeStr == "" || stepStr == "" {
		return nil, fmt.Errorf("xacmlplus: window obligation missing type/size/step")
	}
	wt, err := dsms.ParseWindowType(typeStr)
	if err != nil {
		return nil, fmt.Errorf("xacmlplus: %w", err)
	}
	size, err := strconv.ParseInt(sizeStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("xacmlplus: bad window size %q", sizeStr)
	}
	step, err := strconv.ParseInt(stepStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("xacmlplus: bad window step %q", stepStr)
	}
	spec := dsms.WindowSpec{Type: wt, Size: size, Step: step}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("xacmlplus: %w", err)
	}
	attrVals := values(o, AttrWindowAttr, attrWindowAttrAlt)
	if len(attrVals) == 0 {
		return nil, fmt.Errorf("xacmlplus: window obligation without aggregation attributes")
	}
	aggs := make([]dsms.AggSpec, 0, len(attrVals))
	for _, av := range attrVals {
		spec, err := dsms.ParseAggSpec(av)
		if err != nil {
			return nil, fmt.Errorf("xacmlplus: %w", err)
		}
		aggs = append(aggs, spec)
	}
	return dsms.NewAggregateBox(spec, aggs...), nil
}

func firstNonEmpty(vs []string) string {
	for _, v := range vs {
		if v != "" {
			return v
		}
	}
	return ""
}

// GraphToObligations is the inverse of ObligationsToGraph: it encodes a
// query graph as the obligations block of an XACML policy (Fig 2). The
// workload generator uses it to synthesise policies from random graphs.
func GraphToObligations(g *dsms.QueryGraph) ([]xacml.Obligation, error) {
	var out []xacml.Obligation
	for _, b := range g.Boxes {
		switch b.Kind {
		case dsms.BoxFilter:
			if b.Condition == nil {
				continue
			}
			out = append(out, xacml.Obligation{
				ObligationID: ObligationFilter,
				FulfillOn:    xacml.EffectPermit,
				Assignments: []xacml.AttributeAssignment{
					xacml.NewStringAssignment(AttrFilterCondition, b.Condition.String()),
				},
			})
		case dsms.BoxMap:
			ob := xacml.Obligation{ObligationID: ObligationMap, FulfillOn: xacml.EffectPermit}
			for _, a := range b.Attrs {
				ob.Assignments = append(ob.Assignments, xacml.NewStringAssignment(AttrMapAttribute, a))
			}
			out = append(out, ob)
		case dsms.BoxAggregate:
			ob := xacml.Obligation{ObligationID: ObligationWindow, FulfillOn: xacml.EffectPermit}
			ob.Assignments = append(ob.Assignments,
				xacml.NewIntAssignment(AttrWindowStep, strconv.FormatInt(b.Window.Step, 10)),
				xacml.NewIntAssignment(AttrWindowSize, strconv.FormatInt(b.Window.Size, 10)),
				xacml.NewStringAssignment(AttrWindowType, b.Window.Type.String()),
			)
			for _, a := range b.Aggs {
				ob.Assignments = append(ob.Assignments, xacml.NewStringAssignment(AttrWindowAttr, a.String()))
			}
			out = append(out, ob)
		default:
			return nil, fmt.Errorf("xacmlplus: cannot encode box kind %v", b.Kind)
		}
	}
	return out, nil
}
