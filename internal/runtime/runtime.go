// Package runtime is the sharded ingest plane of the reproduction: it
// fronts a pool of shard backends with bounded per-shard queues,
// batched publishing and Aurora-style load-shedding, so many concurrent
// publishers scale past the single engine mutex. Each shard slot is a
// ShardBackend — an in-process dsms.Engine (LocalBackend) or a remote
// dsmsd process (RemoteBackend, with health probing, bounded reconnect
// and a failover hook) — so one runtime can span several machines
// (Options.Backends). Streams are hash-partitioned across shards by
// name, or — when registered with a partition key — row-by-row by the
// key attribute's value, in which case continuous queries are deployed
// on every shard and their outputs merged transparently.
//
// On top of the shard queues sits an admission-control layer: every
// stream registers with a priority Class (BestEffort / Normal /
// Critical, default Normal) and an optional token-bucket quota
// (WithQuota). PublishBatchVerdict enforces the quota before tuples
// reach a shard and reports how many tuples were admitted versus shed,
// and the backpressure policies are class-aware — under overload the
// drop policies evict lowest-class tuples first, and Block can be
// limited to classes at or above Options.BlockClass. Stats exposes the
// resulting per-shard, per-stream and per-class accounting, which
// satisfies offered == ingested + dropped + errors after a Flush.
//
// The admission state is live: Reconfigure atomically swaps a stream's
// class and quota without re-registering it — the lever the
// accountability governor (internal/governor) pulls to demote abusive
// subjects — and pushes the new state to remote dsmsd shards so
// direct publishers are metered to the same configuration.
//
// The PEP-facing surface (StreamSchema / DeployScript / Withdraw)
// matches xacmlplus.StreamEngine, so the policy plane runs unchanged on
// top of a sharded runtime.
package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/coarsetime"
	"repro/internal/dsms"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Policy selects what happens when a shard's queue is full.
type Policy int

const (
	// Block applies backpressure: publishers wait for queue space.
	Block Policy = iota
	// DropNewest sheds the incoming tuple (Aurora-style load-shedding
	// at the source).
	DropNewest
	// DropOldest evicts the oldest queued tuple to admit the new one,
	// keeping the freshest data under overload.
	DropOldest
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "dropnewest"
	case DropOldest:
		return "dropoldest"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy reads a policy name (as printed by String).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "block", "":
		return Block, nil
	case "dropnewest", "drop-newest":
		return DropNewest, nil
	case "dropoldest", "drop-oldest":
		return DropOldest, nil
	}
	return Block, fmt.Errorf("runtime: unknown backpressure policy %q", s)
}

// Defaults for Options zero values.
const (
	DefaultQueueSize = 4096
	DefaultBatchSize = 256
	// DefaultTraceSampleEvery is the publish-trace sampling period: one
	// traced batch in 1024, cheap enough to leave on under load while
	// still filling the stage histograms within seconds at realistic
	// rates.
	DefaultTraceSampleEvery = 1024
	// DefaultMergeBuffer is the merge stage's per-partition reorder
	// bound: how many pending windows (or relayed rows) one partition
	// may buffer while waiting for a slower partition before the oldest
	// pending window is force-released without the laggard.
	DefaultMergeBuffer = 4096
)

// BackendSpec selects the backend for one shard slot: the zero value
// is an in-process dsms.Engine; a non-empty Addr fronts the dsmsd
// process listening there, tuned by Remote.
type BackendSpec struct {
	// Addr is the dsmsd address of a remote shard; "" or "local" means
	// an in-process engine.
	Addr string
	// Remote tunes the remote backend; ignored for local shards.
	Remote RemoteOptions
}

// FailoverMode selects what happens to publishes bound for a shard
// whose remote backend has been declared down.
type FailoverMode int

const (
	// FailoverFail (default) fails such publishes fast: the tuples are
	// accounted as errors and PublishBatchVerdict returns the backend's
	// terminal error (wrapping client.ErrConnClosed).
	FailoverFail FailoverMode = iota
	// FailoverReroute re-targets such publishes at the next healthy
	// shard (linear probe, so the dead shard's whole load lands on one
	// survivor): partitioned buckets are redirected there, single-shard
	// streams are lazily re-created on the fallback shard. Continuous
	// queries deployed on the dead shard do not migrate — data keeps
	// flowing, queries must be redeployed.
	FailoverReroute
)

// String names the failover mode.
func (m FailoverMode) String() string {
	switch m {
	case FailoverFail:
		return "fail"
	case FailoverReroute:
		return "reroute"
	}
	return fmt.Sprintf("failover(%d)", int(m))
}

// ParseFailover reads a failover mode name (as printed by String).
func ParseFailover(s string) (FailoverMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fail", "":
		return FailoverFail, nil
	case "reroute":
		return FailoverReroute, nil
	}
	return FailoverFail, fmt.Errorf("runtime: unknown failover mode %q", s)
}

// ParseShardAddrs reads a comma-separated shard backend list for CLI
// flags: each entry is a dsmsd host:port address, or "local" (or the
// empty string) for an in-process shard. "local,127.0.0.1:7420,local"
// describes a three-shard mixed topology.
func ParseShardAddrs(s string) ([]BackendSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" || strings.EqualFold(part, "local") {
			out = append(out, BackendSpec{})
			continue
		}
		if !strings.Contains(part, ":") {
			return nil, fmt.Errorf("runtime: shard address %q is not host:port (or \"local\")", part)
		}
		out = append(out, BackendSpec{Addr: part})
	}
	return out, nil
}

// Options configures a Runtime.
type Options struct {
	// Shards is the number of engine shards (default 1). Ignored when
	// Backends is set.
	Shards int
	// Backends selects a backend per shard slot (local engine or remote
	// dsmsd process); when non-empty its length is the shard count.
	Backends []BackendSpec
	// QueueSize is the per-shard ring buffer capacity (default 4096).
	QueueSize int
	// BatchSize is the maximum number of tuples a shard worker drains
	// per wake-up and ships per engine call (default 256).
	BatchSize int
	// Policy is the backpressure policy for full queues (default Block).
	Policy Policy
	// BlockClass makes the Block policy class-aware: only streams of
	// this class or above wait for queue space; lower classes are shed
	// when the queue is full. The default (BestEffort, the lowest class)
	// blocks every stream, matching the pre-admission behaviour.
	BlockClass Class
	// Failover selects how publishes bound for a downed remote shard
	// are handled (default FailoverFail). Replicated streams (see
	// Replication) ignore this: their failover is promotion of a
	// follower replica.
	Failover FailoverMode
	// Replication is the number of shards each single-shard stream is
	// materialized on: the owning shard plus Replication-1 follower
	// shards receiving an asynchronous copy of every ingested tuple
	// (clamped to the shard count; default 1 = replication off). When
	// the owner's backend goes down, the most caught-up healthy
	// follower is promoted: the retained log tail is flushed to it,
	// publishes are rerouted, and standby query parts deployed on it
	// take over with warm window state. Partitioned streams are not
	// replicated (every shard already holds a partition).
	Replication int
	// ReplicationLog bounds the retained replication log per stream in
	// tuples (default DefaultReplicationLog). A follower that falls
	// further behind than the retained tail skips the gap (counted in
	// ReplicaLag.Gaps) rather than stalling the primary.
	ReplicationLog int
	// MergeBuffer bounds the re-aggregation merge stage's per-partition
	// reorder buffer (pending windows or relayed rows; default
	// DefaultMergeBuffer). When shard skew lets one partition run this
	// far ahead of the slowest, the oldest pending window is
	// force-released without the laggard's contribution, counted in
	// exacml_merge_forced_total; bit-exact global answers are only
	// guaranteed while the bound is never hit.
	MergeBuffer int
	// MergeLateness bounds how long the merge stage waits on a lagging
	// partition before force-releasing the oldest pending window. The
	// default 0 waits indefinitely — correctness first: a dead shard is
	// handled by replication failover, not by timing out its windows.
	MergeLateness time.Duration
	// OnShardDown, when non-nil, is invoked once per shard whose
	// backend is declared down, with the shard index and terminal
	// error (observability hook; called from a backend goroutine).
	OnShardDown func(shard int, err error)
	// Metrics, when non-nil, receives the runtime's metric families
	// (shard and stream accounting, health events) and enables engine
	// telemetry on every local shard; the publish-path tracer is built
	// over it too. Nil (the default) keeps telemetry entirely off the
	// hot path.
	Metrics *telemetry.Registry
	// TraceSampleEvery is the publish-trace sampling period in batches
	// (rounded up to a power of two; default DefaultTraceSampleEvery).
	// Ignored without Metrics.
	TraceSampleEvery int
	// Audit, when non-nil, receives a Kind "health" event per remote
	// shard health transition (connected / reconnected / down), feeding
	// the same hash chain the access decisions land on.
	Audit *audit.Log
	// Catalog, when non-nil, observes every committed control-plane
	// mutation (stream DDL, durable admission swaps, query deploys and
	// withdrawals) so a durable store can persist and replay them; see
	// CatalogObserver.
	Catalog CatalogObserver
}

func (o Options) withDefaults() Options {
	if len(o.Backends) > 0 {
		o.Shards = len(o.Backends)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = DefaultQueueSize
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize > o.QueueSize {
		o.BatchSize = o.QueueSize
	}
	if o.TraceSampleEvery <= 0 {
		o.TraceSampleEvery = DefaultTraceSampleEvery
	}
	if o.Replication <= 0 {
		o.Replication = 1
	}
	if o.Replication > o.Shards {
		o.Replication = o.Shards
	}
	if o.ReplicationLog <= 0 {
		o.ReplicationLog = DefaultReplicationLog
	}
	if o.MergeBuffer <= 0 {
		o.MergeBuffer = DefaultMergeBuffer
	}
	return o
}

var errClosed = errors.New("runtime: closed")

// route records where a stream's tuples go and how they are admitted.
type route struct {
	name   string
	schema *stream.Schema
	// keyIdx is the partition-key field index, or -1 when the whole
	// stream lives on a single shard.
	keyIdx int
	// shard is the owning shard for single-shard streams.
	shard int
	// adm is the stream's live admission state (class + quota bucket),
	// set at registration and atomically replaced by Reconfigure; the
	// publish path loads it once per batch.
	adm atomic.Pointer[admissionState]
	// reconfigures counts live admission swaps applied to the stream.
	reconfigures atomic.Uint64
	// counters is the per-stream admission accounting; deliberately
	// NOT part of the swapped state, so offered == ingested + dropped +
	// errors keeps holding across a class/quota transition.
	counters *streamCounters

	// failover state: extra shards this single-shard stream has been
	// lazily created on after its owner went down (FailoverReroute),
	// and whether the stream has been dropped (in-flight publishers
	// must not re-create it on a fallback shard afterwards).
	fmu     sync.Mutex
	extra   map[int]bool
	dropped bool

	// Replication state (nil repl means the stream is not replicated):
	// replicas are the follower shard indices, repl owns the bounded
	// tuple log and shippers, and failTo is the promoted primary shard
	// after a failover (-1 while the original owner serves). fmu also
	// serializes promotion, so two concurrent shard failures cannot
	// promote the same route twice.
	replicas []int
	repl     *replicator
	failTo   atomic.Int32

	// Global sequence stamping (partitioned routes only): stampG is
	// the number of tuples admitted to the route so far — the global
	// position g of the most recently stamped tuple — and stampA[p] is
	// the highest g routed to record source p (the logical partition
	// for replicated sub-routes, the possibly-rerouted target shard
	// otherwise). stampMu is held from
	// stamping through the bucket enqueues of a batch, so every
	// partition's queue receives its tuples in strictly increasing g
	// order; the staged shard pipelines and the merge stage both rely
	// on that ordering. The values themselves are atomics so the merge
	// stage can snapshot the frontier WITHOUT the lock: a publisher
	// blocked on a full shard queue holds stampMu, and the merge pump
	// is part of the very consumer chain that drains that queue —
	// taking stampMu there would close a deadlock cycle.
	stampMu sync.Mutex
	stampG  atomic.Uint64
	stampA  []atomic.Uint64

	// subs are the per-partition internal sub-routes of a replicated
	// partitioned stream ("name@p", one per partition, each a
	// replicated single-shard route sharing the parent's counters);
	// nil when replication is off. internal marks such a sub-route
	// itself: hidden from Streams and per-stream Stats, and not a
	// valid publish or deploy target.
	subs     []*route
	internal bool
}

// stampFrontier snapshots a partitioned route's stamp state for the
// merge stage's effective-watermark rule: g is the global high position
// G, a is partition p's assigned high position A_p. It deliberately
// does NOT take stampMu (see the field comment: the caller sits on the
// queue-consumer side of a possible publisher block). Lock-free reads
// are safe because of the read order: G is loaded BEFORE A_p, so the
// returned a is at least the A_p that was current at position g — at
// worst newer, which only makes the caller's W_p >= a check harder to
// pass (conservative). The caller must read its own processed
// watermark W_p AFTER this snapshot; W_p >= a then proves partition p
// has no tuple in flight at or below g.
func (r *route) stampFrontier(p int) (g, a uint64) {
	g = r.stampG.Load()
	a = r.stampA[p].Load()
	return g, a
}

// primaryShard is the shard currently serving the route's ingest: the
// promoted replica after a failover, the registered owner otherwise.
func (r *route) primaryShard() int {
	if ft := r.failTo.Load(); ft >= 0 {
		return int(ft)
	}
	return r.shard
}

// hasReplica reports whether shard i is one of the route's followers.
func (r *route) hasReplica(i int) bool {
	for _, fi := range r.replicas {
		if fi == i {
			return true
		}
	}
	return false
}

// Runtime is the sharded ingest runtime.
type Runtime struct {
	name   string
	opts   Options
	shards []*shard
	start  time.Time

	// reg/tracer are nil unless Options.Metrics was set; every metric
	// and span method tolerates nil, so the hot path needs no guards.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer

	rejected atomic.Uint64

	mu      sync.RWMutex
	routes  map[string]*route
	pending map[string]bool        // stream names being registered (backend RPC in flight)
	deps    map[string]*Deployment // keyed by runtime id and by handle
	aliases map[string]string      // restored query id -> pre-restart handle alias in deps
	nextDep int
	closed  bool

	// depMu guards depSt, the per-deployment replication bookkeeping
	// (standby parts, live subscriptions) keyed by runtime query id.
	// Separate from mu so failover can walk deployment state while a
	// reader holds the route lock.
	depMu sync.Mutex
	depSt map[string]*depState
}

// New builds a runtime with opts.Shards engine shards (or one shard
// per opts.Backends entry, mixing in-process engines and remote dsmsd
// processes). With one local shard the engine keeps the runtime's name
// (handles look identical to a plain engine's); with more, shard i is
// named "<name>-<i>".
func New(name string, opts Options) *Runtime {
	opts = opts.withDefaults()
	// Remote failover hooks close over rt, assigned below before any
	// backend operation (and therefore any hook firing) can happen.
	var rt *Runtime
	backends := make([]ShardBackend, opts.Shards)
	for i := range backends {
		var spec BackendSpec
		if len(opts.Backends) > 0 {
			spec = opts.Backends[i]
		}
		if spec.Addr == "" || strings.EqualFold(spec.Addr, "local") {
			en := name
			if opts.Shards > 1 {
				en = fmt.Sprintf("%s-%d", name, i)
			}
			backends[i] = NewLocalBackend(dsms.NewEngine(en))
			continue
		}
		ropts := spec.Remote
		idx, userDown := i, ropts.OnDown
		// Chain the failover hook: put the owning shard into fail-fast
		// mode, then notify the runtime's and the caller's observers.
		ropts.OnDown = func(err error) {
			rt.FailShard(idx, err)
			if h := rt.opts.OnShardDown; h != nil {
				h(idx, err)
			}
			if userDown != nil {
				userDown(err)
			}
		}
		// Chain the re-adoption hook: rebuild the shard's streams,
		// admission state, query parts and replication membership, then
		// run the caller's hook; an error from either re-marks the
		// backend down so the next probe tick retries.
		userReadopt := ropts.OnReadopt
		ropts.OnReadopt = func() error {
			if err := rt.readoptShard(idx); err != nil {
				return err
			}
			if userReadopt != nil {
				return userReadopt()
			}
			return nil
		}
		// Chain the health observer: feed the runtime's telemetry and
		// audit trail, then the caller's hook.
		userHealth := ropts.OnHealthEvent
		ropts.OnHealthEvent = func(event string, err error) {
			rt.noteHealthEvent(idx, event, err)
			if userHealth != nil {
				userHealth(event, err)
			}
		}
		backends[i] = NewRemoteBackend(spec.Addr, ropts)
	}
	rt = NewWithBackends(name, opts, backends)
	return rt
}

// NewWithBackends builds a runtime over caller-supplied backends (one
// shard slot each, at least one); tests and embedders use it to inject
// custom ShardBackend implementations. Remote failover hooks are the
// caller's responsibility here — wire RemoteOptions.OnDown to
// Runtime.FailShard if fail-fast semantics are wanted.
func NewWithBackends(name string, opts Options, backends []ShardBackend) *Runtime {
	if len(backends) == 0 {
		panic("runtime: NewWithBackends needs at least one backend")
	}
	opts.Backends = nil
	opts.Shards = len(backends)
	opts = opts.withDefaults()
	rt := &Runtime{
		name:    name,
		opts:    opts,
		shards:  make([]*shard, len(backends)),
		start:   time.Now(),
		routes:  map[string]*route{},
		pending: map[string]bool{},
		deps:    map[string]*Deployment{},
		aliases: map[string]string{},
		depSt:   map[string]*depState{},
	}
	for i, be := range backends {
		rt.shards[i] = newShard(i, be, opts.QueueSize, opts.BatchSize, opts.Policy, opts.BlockClass)
	}
	if opts.Metrics != nil {
		rt.reg = opts.Metrics
		rt.tracer = telemetry.NewPublishTracer(rt.reg, opts.TraceSampleEvery)
		for _, be := range backends {
			if lb, ok := be.(*LocalBackend); ok {
				// Local engines record seal/pipeline/push stages and their
				// own counters on the shared registry; histogram families
				// are idempotent, so all shards feed the same series.
				lb.Engine().EnableTelemetry(rt.reg, opts.TraceSampleEvery)
			}
		}
		rt.reg.RegisterCollector(rt.collectStats)
	}
	return rt
}

// collectStats exports the runtime's accounting as Prometheus families
// at scrape time — zero hot-path cost, and the exported counters are
// exactly the Stats() ones, so the offered == ingested + dropped +
// errors invariant carries over to the exposition.
func (rt *Runtime) collectStats(g *telemetry.Gather) {
	st := rt.Stats()
	g.Counter("exacml_publish_rejected_total",
		"Tuples rejected synchronously for schema violations.", st.Rejected)
	for _, s := range st.Shards {
		lab := telemetry.L("shard", strconv.Itoa(s.Shard))
		g.Counter("exacml_shard_offered_total",
			"Tuples offered to a shard queue.", s.Offered, lab)
		g.Counter("exacml_shard_accepted_total",
			"Tuples accepted into a shard queue.", s.Accepted, lab)
		g.Counter("exacml_shard_dropped_total",
			"Tuples shed by backpressure policy or eviction, per shard.", s.Dropped, lab)
		g.Counter("exacml_shard_ingested_total",
			"Tuples the shard worker delivered to its backend.", s.Ingested, lab)
		g.Counter("exacml_shard_errors_total",
			"Tuples that failed at the shard backend.", s.Errors, lab)
		g.Gauge("exacml_shard_queue_depth",
			"Tuples queued or draining on a shard.", float64(s.QueueDepth), lab)
		g.Gauge("exacml_shard_queue_capacity",
			"Shard queue capacity.", float64(s.QueueCap), lab)
		healthy := 0.0
		if s.Healthy {
			healthy = 1
		}
		g.Gauge("exacml_shard_healthy",
			"Whether the shard backend is believed reachable (1) or down (0).", healthy, lab)
	}
	for _, row := range st.Streams {
		labs := []telemetry.Label{telemetry.L("stream", row.Stream), telemetry.L("class", row.Class)}
		g.Counter("exacml_stream_offered_total",
			"Tuples offered to a stream.", row.Offered, labs...)
		g.Counter("exacml_stream_shed_total",
			"Tuples shed by the stream's token-bucket quota.", row.Shed, labs...)
		g.Counter("exacml_stream_dropped_total",
			"Tuples dropped for a stream (quota sheds plus policy drops).", row.Dropped, labs...)
		g.Counter("exacml_stream_ingested_total",
			"Tuples ingested for a stream.", row.Ingested, labs...)
		g.Counter("exacml_stream_errors_total",
			"Tuples errored for a stream.", row.Errors, labs...)
		g.Counter("exacml_stream_reconfigured_total",
			"Live admission reconfigurations applied to a stream.", row.Reconfigured, labs...)
	}
	for _, c := range st.Classes {
		lab := telemetry.L("class", c.Class)
		g.Counter("exacml_class_offered_total",
			"Tuples offered, by priority class.", c.Offered, lab)
		g.Counter("exacml_class_dropped_total",
			"Tuples dropped, by priority class.", c.Dropped, lab)
		g.Counter("exacml_class_ingested_total",
			"Tuples ingested, by priority class.", c.Ingested, lab)
	}
	rt.mu.RLock()
	var repls []*route
	for _, r := range rt.routes {
		if r.repl != nil {
			repls = append(repls, r)
		}
	}
	rt.mu.RUnlock()
	for _, r := range repls {
		for _, l := range r.repl.lag() {
			labs := []telemetry.Label{
				telemetry.L("stream", r.name),
				telemetry.L("shard", strconv.Itoa(l.Shard)),
			}
			g.Gauge("exacml_replica_lag",
				"Accepted tuples a follower replica has not yet acknowledged.",
				float64(l.Lag), labs...)
			g.Counter("exacml_replica_gap_total",
				"Tuples a follower permanently missed because the bounded "+
					"replication log trimmed past its position.", l.Gaps, labs...)
			g.Counter("exacml_replica_ship_errors_total",
				"Failed replication ship attempts.", l.Errors, labs...)
		}
	}
}

// count bumps an event counter on the runtime's registry (no-op when
// telemetry is off; the nil registry tolerates every call).
func (rt *Runtime) count(name, help string, labels ...telemetry.Label) {
	rt.reg.Counter(name, help, labels...).Inc()
}

// noteHealthEvent feeds a remote shard's health transition into the
// metric registry and, for real transitions (not per-attempt dials),
// the audit chain. Appending from a fresh goroutine is load-bearing:
// the hook can fire with the backend's mutex held, and an audit
// observer (the governor) may call back into Reconfigure, which needs
// that same mutex to forward admission state.
func (rt *Runtime) noteHealthEvent(shard int, event string, err error) {
	rt.reg.Counter("exacml_shard_health_events_total",
		"Remote shard connection-health transitions, by shard and event "+
			"(dial, connected, reconnected, down).",
		telemetry.L("shard", strconv.Itoa(shard)), telemetry.L("event", event)).Inc()
	if event == "dial" || rt.opts.Audit == nil {
		return
	}
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	go func() {
		_, _ = rt.opts.Audit.Append(audit.Event{
			Kind:     "health",
			Resource: fmt.Sprintf("shard/%d", shard),
			Action:   event,
			Detail:   detail,
		})
	}()
}

// Health reports nil when every shard backend is believed reachable,
// or the first shard's failure; the ops listener's /readyz endpoint is
// wired to it.
func (rt *Runtime) Health() error {
	for i, s := range rt.shards {
		if err := s.failedErr(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if !s.be.Healthy() {
			return fmt.Errorf("shard %d (%s): unhealthy", i, s.be.Kind())
		}
	}
	return nil
}

// NumShards reports the shard count.
func (rt *Runtime) NumShards() int { return len(rt.shards) }

// Backend exposes shard i's backend through the ShardBackend
// interface. (The former Shard accessor returning the raw *dsms.Engine
// is gone: callers that need the in-process engine — tests, mostly —
// can type-assert to *LocalBackend and use its Engine method.)
func (rt *Runtime) Backend(i int) ShardBackend { return rt.shards[i].be }

// FailShard puts shard i into fail-fast mode with the given terminal
// error, as the remote failover hook does; exposed for custom backends
// wired via NewWithBackends. Replicated streams whose current primary
// lives on the failed shard are failed over to their most caught-up
// healthy follower before FailShard returns.
func (rt *Runtime) FailShard(i int, err error) {
	rt.shards[i].fail(err)
	rt.failoverShard(i)
}

// ReadoptShard re-runs the re-adoption sequence for shard i — streams
// re-created (surviving copies adopted), query parts redeployed,
// replication membership resumed, fail-fast mode lifted — as the remote
// health probe does when a restarted dsmsd answers again. Exposed for
// custom backends wired via NewWithBackends, whose health tracking
// lives outside the runtime; pair it with FailShard.
func (rt *Runtime) ReadoptShard(i int) error {
	if i < 0 || i >= len(rt.shards) {
		return fmt.Errorf("runtime: shard %d out of range", i)
	}
	return rt.readoptShard(i)
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}

// hashValue hashes a partition-key value without allocating.
func hashValue(v stream.Value) uint32 {
	switch v.Type() {
	case stream.TypeString:
		return hashString(v.Str())
	case stream.TypeDouble:
		return mix64(math.Float64bits(v.Double()))
	case stream.TypeInt:
		return mix64(uint64(v.Int()))
	case stream.TypeTimestamp:
		return mix64(uint64(v.Millis()))
	case stream.TypeBool:
		if v.Bool() {
			return 1
		}
		return 0
	}
	return 0
}

// mix64 folds a 64-bit pattern into a well-distributed 32-bit hash
// (splitmix64 finalizer).
func mix64(x uint64) uint32 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x ^ x>>32)
}

// reserveStream claims a stream name before the backend RPCs, so
// concurrent registrations cannot race while the runtime lock is NOT
// held across the (possibly remote) CreateStream calls.
func (rt *Runtime) reserveStream(key, name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return errClosed
	}
	if _, dup := rt.routes[key]; dup {
		return fmt.Errorf("runtime: stream %q already exists", name)
	}
	if rt.pending[key] {
		return fmt.Errorf("runtime: stream %q already exists", name)
	}
	rt.pending[key] = true
	return nil
}

// commitStream installs a reserved stream's route; it reports whether
// the runtime closed while the backends were registering (the caller
// then rolls the backend streams back).
func (rt *Runtime) commitStream(key string, r *route) (closed bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.pending, key)
	if rt.closed {
		return true
	}
	rt.routes[key] = r
	return false
}

// abortStream releases a reservation after a failed registration.
func (rt *Runtime) abortStream(key string) {
	rt.mu.Lock()
	delete(rt.pending, key)
	rt.mu.Unlock()
}

// CreateStream registers an input stream on the shard selected by the
// hash of its name. Options attach a priority class (WithClass) and a
// token-bucket quota (WithQuota); the default is class Normal,
// unlimited.
func (rt *Runtime) CreateStream(name string, schema *stream.Schema, opts ...StreamOption) error {
	if name == "" || schema == nil {
		return fmt.Errorf("runtime: stream needs a name and a schema")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	si := int(hashString(key) % uint32(len(rt.shards)))
	if err := rt.reserveStream(key, name); err != nil {
		return err
	}
	if err := rt.shards[si].be.CreateStream(name, schema); err != nil {
		rt.abortStream(key)
		return err
	}
	r := &route{
		name: name, schema: schema, keyIdx: -1, shard: si,
		counters: &streamCounters{},
	}
	r.failTo.Store(-1)
	r.adm.Store(newAdmissionState(cfg))
	// Replication: materialize the stream on the next Replication-1
	// shard slots and start the asynchronous shippers. Followers whose
	// backend does not implement the replica surface are skipped (the
	// stream still exists there for a promoted deploy to find).
	if rt.opts.Replication > 1 {
		for d := 1; d < rt.opts.Replication; d++ {
			fi := (si + d) % len(rt.shards)
			if err := rt.shards[fi].be.CreateStream(name, schema); err != nil {
				for _, done := range r.replicas {
					_ = rt.shards[done].be.DropStream(name)
				}
				_ = rt.shards[si].be.DropStream(name)
				rt.abortStream(key)
				return fmt.Errorf("runtime: replica shard %d: %w", fi, err)
			}
			r.replicas = append(r.replicas, fi)
		}
		r.repl = newReplicator(name, rt.opts.ReplicationLog)
		for _, fi := range r.replicas {
			if tgt, ok := rt.shards[fi].be.(replicaTarget); ok {
				r.repl.addFollower(fi, tgt, 0)
			}
		}
	}
	if rt.commitStream(key, r) {
		if r.repl != nil {
			r.repl.close()
		}
		for _, fi := range r.replicas {
			_ = rt.shards[fi].be.DropStream(name)
		}
		_ = rt.shards[si].be.DropStream(name)
		return errClosed
	}
	// Declare the initial admission state on backends that persist it
	// out-of-process (best effort: a bare dsmsd without the verb still
	// serves the stream).
	rt.forwardAdmission(r, cfg, false)
	rt.noteStreamCreated(name, schema, "", cfg)
	return nil
}

// CreatePartitionedStream registers an input stream on every shard;
// tuples are routed by the hash of the named key field, so all tuples
// with the same key value land on the same shard (and therefore see
// per-key FIFO order and per-key window semantics).
func (rt *Runtime) CreatePartitionedStream(name string, schema *stream.Schema, keyField string, opts ...StreamOption) error {
	if name == "" || schema == nil {
		return fmt.Errorf("runtime: stream needs a name and a schema")
	}
	if strings.TrimSpace(keyField) == "" {
		return fmt.Errorf("runtime: partitioned stream %q needs a non-empty key field", name)
	}
	idx, _, ok := schema.Lookup(keyField)
	if !ok {
		return fmt.Errorf("runtime: partition key %q is not a field of stream %q", keyField, name)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	if err := rt.reserveStream(key, name); err != nil {
		return err
	}
	r := &route{
		name: name, schema: schema, keyIdx: idx, shard: -1,
		counters: &streamCounters{},
		stampA:   make([]atomic.Uint64, len(rt.shards)),
	}
	r.failTo.Store(-1)
	r.adm.Store(newAdmissionState(cfg))
	if rt.opts.Replication > 1 {
		if err := rt.createPartitionedReplicated(key, r, cfg); err != nil {
			return err
		}
		rt.noteStreamCreated(name, schema, keyField, cfg)
		return nil
	}
	// The runtime lock is not held across the per-shard RPCs (remote
	// backends may be slow or redialing); the reservation keeps the
	// name exclusive meanwhile.
	for i, s := range rt.shards {
		if err := s.be.CreateStream(name, schema); err != nil {
			for j := 0; j < i; j++ {
				_ = rt.shards[j].be.DropStream(name)
			}
			rt.abortStream(key)
			return err
		}
	}
	if rt.commitStream(key, r) {
		for _, s := range rt.shards {
			_ = s.be.DropStream(name)
		}
		return errClosed
	}
	rt.forwardAdmission(r, cfg, false)
	rt.noteStreamCreated(name, schema, keyField, cfg)
	return nil
}

// subRouteName names partition p's internal sub-route of a replicated
// partitioned stream.
func subRouteName(name string, p int) string {
	return fmt.Sprintf("%s@%d", name, p)
}

// createPartitionedReplicated finishes registering a partitioned stream
// under Replication > 1: instead of one engine stream per shard, each
// partition p becomes an internal replicated sub-route "name@p" — the
// engine stream lives on shard p plus the next Replication-1 slots,
// with its own replication log and shippers — so a partition survives
// its primary shard's death by follower promotion, exactly like a
// replicated single-shard stream. The sub-routes share the parent's
// admission counters (publish admission happens once, on the parent)
// and are hidden from the user-facing stream listing.
func (rt *Runtime) createPartitionedReplicated(key string, r *route, cfg StreamConfig) error {
	undo := func(subs []*route) {
		for _, sub := range subs {
			if sub.repl != nil {
				sub.repl.close()
			}
			if rt.shards[sub.shard].failedErr() == nil {
				_ = rt.shards[sub.shard].be.DropStream(sub.name)
			}
			for _, fi := range sub.replicas {
				if rt.shards[fi].failedErr() == nil {
					_ = rt.shards[fi].be.DropStream(sub.name)
				}
			}
		}
	}
	subs := make([]*route, 0, len(rt.shards))
	for p := range rt.shards {
		sname := subRouteName(r.name, p)
		sub := &route{
			name: sname, schema: r.schema, keyIdx: -1, shard: p,
			counters: r.counters, internal: true,
		}
		sub.failTo.Store(-1)
		sub.adm.Store(newAdmissionState(cfg))
		if err := rt.shards[p].be.CreateStream(sname, r.schema); err != nil {
			undo(subs)
			rt.abortStream(key)
			return fmt.Errorf("runtime: partition %d: %w", p, err)
		}
		for d := 1; d < rt.opts.Replication; d++ {
			fi := (p + d) % len(rt.shards)
			if err := rt.shards[fi].be.CreateStream(sname, r.schema); err != nil {
				_ = rt.shards[p].be.DropStream(sname)
				for _, done := range sub.replicas {
					_ = rt.shards[done].be.DropStream(sname)
				}
				undo(subs)
				rt.abortStream(key)
				return fmt.Errorf("runtime: partition %d replica shard %d: %w", p, fi, err)
			}
			sub.replicas = append(sub.replicas, fi)
		}
		sub.repl = newReplicator(sname, rt.opts.ReplicationLog)
		for _, fi := range sub.replicas {
			if tgt, ok := rt.shards[fi].be.(replicaTarget); ok {
				sub.repl.addFollower(fi, tgt, 0)
			}
		}
		subs = append(subs, sub)
	}
	r.subs = subs
	rt.mu.Lock()
	delete(rt.pending, key)
	closed := rt.closed
	if !closed {
		rt.routes[key] = r
		for _, sub := range subs {
			rt.routes[strings.ToLower(sub.name)] = sub
		}
	}
	rt.mu.Unlock()
	if closed {
		undo(subs)
		return errClosed
	}
	rt.forwardAdmission(r, cfg, false)
	return nil
}

// DropStream removes a stream from its shard(s), withdrawing every
// query reading from it.
func (rt *Runtime) DropStream(name string) error {
	key := strings.ToLower(name)
	rt.mu.Lock()
	r, ok := rt.routes[key]
	if !ok || r.internal {
		rt.mu.Unlock()
		return fmt.Errorf("runtime: unknown stream %q", name)
	}
	delete(rt.routes, key)
	for _, sub := range r.subs {
		delete(rt.routes, strings.ToLower(sub.name))
	}
	var depIDs []string
	for id, d := range rt.deps {
		if strings.EqualFold(d.Input, name) {
			if id == d.ID {
				depIDs = append(depIDs, id)
				delete(rt.aliases, id)
			}
			delete(rt.deps, id)
		}
	}
	rt.mu.Unlock()
	rt.depMu.Lock()
	for _, id := range depIDs {
		delete(rt.depSt, id)
	}
	rt.depMu.Unlock()
	// The control-plane removal is committed at this point regardless of
	// how the backend drops below fare (mirroring the deps/routes maps).
	rt.noteStreamDropped(r.name)
	// Downed shards are skipped throughout: their streams died with the
	// process, and a conn error would make an otherwise-complete drop
	// look failed (mirroring Withdraw).
	var err error
	if r.keyIdx < 0 {
		if r.repl != nil {
			r.repl.close()
		}
		if rt.shards[r.shard].failedErr() == nil {
			err = rt.shards[r.shard].be.DropStream(r.name)
		}
		for _, fi := range r.replicas {
			if rt.shards[fi].failedErr() == nil {
				_ = rt.shards[fi].be.DropStream(r.name)
			}
		}
		// Failover reroute may have lazily created the stream on
		// fallback shards; drop those copies too, and bar in-flight
		// publishers from re-creating any more.
		r.fmu.Lock()
		r.dropped = true
		extra := make([]int, 0, len(r.extra))
		for i := range r.extra {
			extra = append(extra, i)
		}
		r.fmu.Unlock()
		for _, i := range extra {
			if rt.shards[i].failedErr() == nil {
				_ = rt.shards[i].be.DropStream(r.name)
			}
		}
		return err
	}
	if r.subs != nil {
		// Replicated partitioned: tear down each partition's sub-route
		// (replicator, primary copy, follower copies).
		for _, sub := range r.subs {
			sub.fmu.Lock()
			sub.dropped = true
			sub.fmu.Unlock()
			if sub.repl != nil {
				sub.repl.close()
			}
			for _, i := range append([]int{sub.shard}, sub.replicas...) {
				if rt.shards[i].failedErr() == nil {
					if derr := rt.shards[i].be.DropStream(sub.name); derr != nil && err == nil {
						err = derr
					}
				}
			}
		}
		return err
	}
	for _, s := range rt.shards {
		if s.failedErr() != nil {
			continue
		}
		if derr := s.be.DropStream(r.name); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

func (rt *Runtime) routeFor(name string) (*route, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.closed {
		return nil, errClosed
	}
	r, ok := rt.routes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown stream %q", name)
	}
	return r, nil
}

// StreamSchema implements the PEP-facing engine surface.
func (rt *Runtime) StreamSchema(name string) (*stream.Schema, error) {
	r, err := rt.routeFor(name)
	if err != nil {
		return nil, err
	}
	return r.schema, nil
}

// StreamAdmission reports a stream's current admission configuration
// (priority class and token-bucket quota), as registered or as last
// swapped in by Reconfigure.
func (rt *Runtime) StreamAdmission(name string) (StreamConfig, error) {
	r, err := rt.routeFor(name)
	if err != nil {
		return StreamConfig{}, err
	}
	return r.adm.Load().cfg, nil
}

// Reconfigure atomically replaces a stream's priority class and
// token-bucket quota without re-registering it, returning the previous
// configuration. The swap is a single pointer exchange: a batch in
// flight finishes under the configuration it loaded, the next batch
// publishes under the new one — which is also when the stream's tuples
// start entering their new per-class ring (tuples already queued keep
// the class they were admitted under, preserving eviction fairness for
// work the old class already paid for). The quota bucket starts full
// (Burst tokens), so a demotion takes effect within one burst. The
// per-stream counters survive the swap untouched, keeping
//
//	offered == ingested + dropped + errors
//
// intact across the transition; the stream's Stats row reports the new
// class/quota and an incremented Reconfigured count. The new state is
// pushed to remote shard backends hosting the stream so their
// direct-ingest metering converges (see dsmsd.StreamAdmission); the
// local swap always applies, and a forwarding failure is reported so
// operators learn about the divergence.
func (rt *Runtime) Reconfigure(name string, cfg StreamConfig) (StreamConfig, error) {
	return rt.reconfigure(name, cfg, true)
}

// ReconfigureEphemeral is Reconfigure minus the catalog record: the
// swap is applied live (and forwarded to remote shards) but NOT
// persisted as the stream's configured admission state. The governor
// drives demotions and cooldown restores through it — a demotion is
// re-derived from the audit chain on boot, so recording it in the
// catalog would bake it in past its cooldown.
func (rt *Runtime) ReconfigureEphemeral(name string, cfg StreamConfig) (StreamConfig, error) {
	return rt.reconfigure(name, cfg, false)
}

func (rt *Runtime) reconfigure(name string, cfg StreamConfig, durable bool) (StreamConfig, error) {
	norm, err := normalizeConfig(cfg)
	if err != nil {
		return StreamConfig{}, err
	}
	r, err := rt.routeFor(name)
	if err != nil {
		return StreamConfig{}, err
	}
	// fmu serializes the swap+forward pair, so two racing Reconfigures
	// cannot leave a remote shard on the config the local route lost.
	// (Holding fmu across the forwarding RPCs mirrors ensureStreamOn,
	// which already holds it across a remote CreateStream.)
	r.fmu.Lock()
	old := r.adm.Swap(newAdmissionState(norm))
	r.reconfigures.Add(1)
	ferr := rt.forwardAdmissionLocked(r, norm, true)
	r.fmu.Unlock()
	if durable {
		// The local swap applied even when forwarding failed, so the
		// catalog records it either way.
		rt.noteStreamReconfigured(r.name, norm)
	}
	return old.cfg, ferr
}

// admissionForwarder is the optional ShardBackend surface Reconfigure
// and stream registration use to push a stream's current class/quota
// to backends that keep admission state out-of-process (RemoteBackend
// forwards to its dsmsd, which meters direct publishers with it).
type admissionForwarder interface {
	ForwardAdmission(name string, cfg StreamConfig) error
}

// forwardAdmission declares a stream's admission state on every
// forwarding-capable, healthy backend hosting it. With must set the
// first failure is returned (explicit Reconfigure); registration-time
// declaration is best effort, since a bare dsmsd without the verb is a
// legitimate backend.
func (rt *Runtime) forwardAdmission(r *route, cfg StreamConfig, must bool) error {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	return rt.forwardAdmissionLocked(r, cfg, must)
}

// forwardAdmissionLocked is forwardAdmission with r.fmu already held
// (the caller needs the swap and the forwarding to be one serialized
// step).
func (rt *Runtime) forwardAdmissionLocked(r *route, cfg StreamConfig, must bool) error {
	// A replicated partitioned route has no engine stream of its own
	// name: the admission state is declared per sub-route instead, on
	// each shard hosting that partition's stream.
	if r.subs != nil {
		var first error
		for _, sub := range r.subs {
			shards := append([]int{sub.shard}, sub.replicas...)
			for _, i := range shards {
				s := rt.shards[i]
				fw, ok := s.be.(admissionForwarder)
				if !ok || s.failedErr() != nil {
					continue
				}
				if err := fw.ForwardAdmission(sub.name, cfg); err != nil && first == nil {
					first = fmt.Errorf("runtime: shard %d: forward admission: %w", i, err)
				}
			}
		}
		if !must {
			return nil
		}
		return first
	}
	var shards []int
	if r.keyIdx < 0 {
		shards = append(shards, r.shard)
		for i := range r.extra {
			shards = append(shards, i)
		}
	} else {
		for i := range rt.shards {
			shards = append(shards, i)
		}
	}
	var first error
	for _, i := range shards {
		s := rt.shards[i]
		fw, ok := s.be.(admissionForwarder)
		if !ok || s.failedErr() != nil {
			continue
		}
		if err := fw.ForwardAdmission(r.name, cfg); err != nil && first == nil {
			first = fmt.Errorf("runtime: shard %d: forward admission: %w", i, err)
		}
	}
	if !must {
		return nil
	}
	return first
}

// ShardForStream reports the shard slot a non-partitioned stream of
// the given name is (or would be) placed on; benchmarks use it to lay
// streams out across specific backends.
func (rt *Runtime) ShardForStream(name string) int {
	return int(hashString(strings.ToLower(name)) % uint32(len(rt.shards)))
}

// Streams lists registered stream names, sorted.
func (rt *Runtime) Streams() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]string, 0, len(rt.routes))
	for _, r := range rt.routes {
		if r.internal {
			continue
		}
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// Publish enqueues a single tuple (a batch of one).
func (rt *Runtime) Publish(streamName string, t stream.Tuple) error {
	one := [1]stream.Tuple{t}
	_, err := rt.PublishBatch(streamName, one[:])
	return err
}

// PublishBatch enqueues a batch of tuples for a stream, applying the
// stream's quota and then the backpressure policy per shard. The
// returned count is the number of tuples accepted into shard queues;
// see PublishBatchVerdict for the full admission breakdown.
func (rt *Runtime) PublishBatch(streamName string, ts []stream.Tuple) (int, error) {
	v, err := rt.PublishBatchVerdict(streamName, ts)
	return v.Accepted, err
}

// PublishBatchVerdict enqueues a batch of tuples for a stream and
// reports the admission verdict. Tuples are validated against the
// stream schema first — an invalid tuple rejects the whole batch
// synchronously (counted in Stats().Rejected) so publishers learn about
// schema violations immediately rather than from shard counters. Valid
// tuples then pass the stream's token-bucket quota: tuples beyond the
// available tokens are shed (Verdict.Shed) without reaching any shard,
// admitting the batch prefix so stream order is preserved. The
// remainder is enqueued under the backpressure policy: with Block,
// streams at or above Options.BlockClass wait for space while lower
// classes are shed; DropNewest sheds the incoming tuple unless a
// lower-class queued tuple can be evicted instead; DropOldest evicts
// the oldest queued tuple of the lowest class at or below the incoming
// one.
func (rt *Runtime) PublishBatchVerdict(streamName string, ts []stream.Tuple) (PublishVerdict, error) {
	if len(ts) == 0 {
		return PublishVerdict{}, nil
	}
	r, err := rt.routeFor(streamName)
	if err != nil {
		return PublishVerdict{}, err
	}
	if r.internal {
		return PublishVerdict{}, fmt.Errorf("runtime: stream %q is an internal partition sub-route; publish to its parent stream", streamName)
	}
	for i := range ts {
		if err := ts[i].Conforms(r.schema); err != nil {
			rt.rejected.Add(uint64(len(ts)))
			return PublishVerdict{}, fmt.Errorf("runtime: tuple %d: %w", i, err)
		}
	}
	// One atomic load pins the batch to a single admission state, so a
	// concurrent Reconfigure flips class and quota between batches,
	// never inside one.
	ad := r.adm.Load()
	v := PublishVerdict{Offered: len(ts)}
	r.counters.offered.Add(uint64(len(ts)))
	if ad.bucket != nil {
		grant := ad.bucket.Take(len(ts))
		v.Shed = len(ts) - grant
		if v.Shed > 0 {
			r.counters.shed.Add(uint64(v.Shed))
			ts = ts[:grant]
		}
		if grant == 0 {
			return v, nil
		}
	}
	// Replicated streams stamp arrival times at publish admission: the
	// engine's seal preserves non-zero arrivals, so the primary and
	// every follower see identical timestamps and their time-window
	// aggregates stay bit-compatible. (The runtime owns the batch from
	// here on, same contract as the engine's owned ingest.)
	if r.repl != nil {
		now := coarsetime.NowMillis()
		for i := range ts {
			if ts[i].ArrivalMillis == 0 {
				ts[i].ArrivalMillis = now
			}
		}
	}
	// Sample the publish tracer once per batch (nil tracer or unsampled
	// batch → nil span, and every stamp below is a no-op). The span's
	// queue-wait stage opens here and travels with the batch's first
	// queued tuple to the shard worker.
	sp := rt.tracer.Sample()
	sp.Begin(telemetry.StageQueueWait)
	if r.keyIdx < 0 {
		n, err := rt.shards[rt.targetShard(r, r.shard)].enqueue(r.name, ad.cfg.Class, r.counters, r.repl, ts, sp)
		v.Accepted = n
		return v, err
	}
	// Partitioned: split the batch by key hash, preserving the relative
	// order of tuples bound for the same shard. The key is coerced to
	// its schema type first so widening-equal values (IntValue(5) vs
	// DoubleValue(5)) hash to the same shard.
	//
	// Every admitted tuple is stamped with the next dense global
	// sequence position g (in admission order) and its arrival time is
	// fixed here — the engine seal preserves both — so all partitions,
	// and every replica of a partition, see identical provenance, and
	// the merge stage can align partial aggregates from different
	// shards into one global answer. The stamp lock is held from
	// stamping through the bucket enqueues: each partition's queue must
	// receive its tuples in strictly increasing g order. That
	// serializes concurrent publishes to one partitioned route at the
	// enqueue step (batches still pipeline through the shard workers
	// concurrently).
	keyType := r.schema.Field(r.keyIdx).Type
	var firstErr error
	r.stampMu.Lock()
	now := coarsetime.NowMillis()
	buckets := make([][]stream.Tuple, len(rt.shards))
	for i := range ts {
		if ts[i].ArrivalMillis == 0 {
			ts[i].ArrivalMillis = now
		}
		ts[i].Seq = r.stampG.Add(1)
		kv := ts[i].Values[r.keyIdx]
		if !kv.IsNull() && kv.Type() != keyType {
			if cv, err := kv.CoerceTo(keyType); err == nil {
				kv = cv
			}
		}
		si := int(hashValue(kv) % uint32(len(rt.shards)))
		buckets[si] = append(buckets[si], ts[i])
	}
	// A failed shard refuses its bucket (accounted as errors); the
	// remaining buckets must still be offered to their shards or the
	// per-stream accounting would leak the skipped tuples. The first
	// error is reported after every bucket has been dispatched.
	for si, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		// The span rides with the first dispatched bucket; the others go
		// untraced (per-bucket spans would multiply one sampled publish
		// into shard-count traces).
		sname, repl, tgt := r.name, (*replicator)(nil), rt.targetShard(r, si)
		src := si
		if r.subs != nil {
			// Replicated partition: the bucket lands on the sub-route's
			// current primary and feeds its replication log. The record
			// source stays the logical partition — whichever shard hosts
			// it after failover serves the same "name@p" stream.
			sub := r.subs[si]
			sname, repl, tgt = sub.name, sub.repl, rt.targetShard(sub, sub.shard)
		} else {
			// Without replication the record source is the physical
			// shard: under FailoverReroute a dead shard's bucket flows to
			// a survivor's stream, and the survivor's watermark is what
			// covers these positions.
			src = tgt
		}
		// A_src must cover the bucket before its tuples can surface in a
		// shard watermark; the stamp lock makes the pair (G, A) consistent
		// for frontier snapshots. A bucket the shard then refuses leaves
		// its positions permanently unwatermarked — the merge stage stalls
		// on such holes until its lateness bound (if any) forces release.
		r.stampA[src].Store(bucket[len(bucket)-1].Seq)
		n, err := rt.shards[tgt].enqueue(sname, ad.cfg.Class, r.counters, repl, bucket, sp)
		sp = nil
		v.Accepted += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.stampMu.Unlock()
	sp.CloseOpen()
	sp.Finish()
	return v, firstErr
}

// targetShard applies the failover policy: tuples bound for a downed
// shard are re-targeted at the next healthy one under FailoverReroute
// (partitioned streams exist on every shard; single-shard streams are
// lazily created on the fallback). Under FailoverFail — or when no
// healthy sibling exists — the original shard is returned and its
// enqueue fails fast with exact error accounting.
func (rt *Runtime) targetShard(r *route, si int) int {
	// Replicated routes ignore the generic failover modes: after a
	// promotion every publish lands on the promoted replica (even if it
	// is currently failing — the next promotion will move failTo), and
	// until the promotion completes publishes fail fast, bounding the
	// blast radius to exactly the accounted errors.
	if r.repl != nil && si == r.shard {
		if ft := r.failTo.Load(); ft >= 0 {
			return int(ft)
		}
		return si
	}
	if rt.shards[si].failedErr() == nil {
		return si
	}
	if rt.opts.Failover != FailoverReroute {
		return si
	}
	n := len(rt.shards)
	for d := 1; d < n; d++ {
		t := (si + d) % n
		if rt.shards[t].failedErr() != nil {
			continue
		}
		if err := rt.ensureStreamOn(r, t); err != nil {
			continue
		}
		return t
	}
	return si
}

// ensureStreamOn lazily registers a single-shard stream on a failover
// target, once; partitioned streams already exist everywhere.
func (rt *Runtime) ensureStreamOn(r *route, t int) error {
	if r.keyIdx >= 0 || t == r.shard {
		return nil
	}
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if r.dropped {
		return fmt.Errorf("runtime: stream %q dropped", r.name)
	}
	if r.extra[t] {
		return nil
	}
	if err := rt.shards[t].be.CreateStream(r.name, r.schema); err != nil {
		return err
	}
	if r.extra == nil {
		r.extra = map[int]bool{}
	}
	r.extra[t] = true
	return nil
}

// Flush blocks until every queued tuple has been drained into the
// engines and every engine pipeline has quiesced, making concurrent
// publish tests and benchmarks deterministic. For replicated streams
// it additionally waits until every follower on a healthy shard has
// acknowledged the full log and the follower backends have quiesced,
// so a post-Flush inspection sees identical primary and replica state.
func (rt *Runtime) Flush() {
	for _, s := range rt.shards {
		s.flush()
	}
	rt.mu.RLock()
	var repls []*route
	for _, r := range rt.routes {
		if r.repl != nil {
			repls = append(repls, r)
		}
	}
	rt.mu.RUnlock()
	healthy := func(i int) bool { return rt.shards[i].failedErr() == nil }
	flushed := map[int]bool{}
	for _, r := range repls {
		r.repl.waitIdle(healthy)
		for _, fi := range r.replicas {
			if healthy(fi) && !flushed[fi] {
				flushed[fi] = true
				_ = rt.shards[fi].be.Flush()
			}
		}
	}
}

// ReplicaLag reports a replicated stream's follower positions (empty
// for unknown or unreplicated streams).
func (rt *Runtime) ReplicaLag(streamName string) []ReplicaLag {
	r, err := rt.routeFor(streamName)
	if err != nil || r.repl == nil {
		return nil
	}
	return r.repl.lag()
}

// PauseDrain stops the shard workers after their current batch;
// publishes keep queueing (and shedding, per policy) against a frozen
// queue. Tests and maintenance windows use this to saturate queues
// deterministically.
func (rt *Runtime) PauseDrain() {
	for _, s := range rt.shards {
		s.pause()
	}
}

// ResumeDrain restarts paused shard workers.
func (rt *Runtime) ResumeDrain() {
	for _, s := range rt.shards {
		s.resume()
	}
}

// Stats snapshots per-shard queue depths, accounting counters and
// throughput, plus the per-stream and per-class admission counters.
// After a Flush, every row satisfies
//
//	offered == ingested + dropped + errors
//
// where a stream's (and class's) Dropped includes both policy drops and
// quota sheds; Shed breaks out the quota-only portion.
func (rt *Runtime) Stats() metrics.RuntimeStats {
	elapsed := time.Since(rt.start)
	st := metrics.RuntimeStats{
		Engine:   rt.name,
		Elapsed:  elapsed,
		Rejected: rt.rejected.Load(),
		Shards:   make([]metrics.ShardStat, 0, len(rt.shards)),
	}
	sec := elapsed.Seconds()
	for _, s := range rt.shards {
		st.Shards = append(st.Shards, s.snapshot(sec))
	}

	rt.mu.RLock()
	routes := make([]*route, 0, len(rt.routes))
	for _, r := range rt.routes {
		// Internal sub-routes share their parent's counters; listing
		// them would multiply the parent's row per partition.
		if r.internal {
			continue
		}
		routes = append(routes, r)
	}
	rt.mu.RUnlock()
	byClass := map[string]*metrics.ClassStat{}
	for _, r := range routes {
		shed := r.counters.shed.Load()
		ad := r.adm.Load()
		row := metrics.StreamStat{
			Stream: r.name,
			Class:  ad.cfg.Class.String(),
			Rate:   ad.cfg.Rate,
			Burst:  ad.cfg.Burst, // normalized; matches the bucket

			Reconfigured: r.reconfigures.Load(),

			Offered:  r.counters.offered.Load(),
			Shed:     shed,
			Dropped:  r.counters.dropped.Load() + shed,
			Ingested: r.counters.ingested.Load(),
			Errors:   r.counters.errors.Load(),
		}
		if sec > 0 {
			row.Throughput = float64(row.Ingested) / sec
		}
		st.Streams = append(st.Streams, row)
		c, ok := byClass[row.Class]
		if !ok {
			c = &metrics.ClassStat{Class: row.Class}
			byClass[row.Class] = c
		}
		c.Offered += row.Offered
		c.Shed += row.Shed
		c.Dropped += row.Dropped
		c.Ingested += row.Ingested
		c.Errors += row.Errors
	}
	sort.Slice(st.Streams, func(i, j int) bool { return st.Streams[i].Stream < st.Streams[j].Stream })
	for c := Class(0); c < numClasses; c++ {
		if row, ok := byClass[c.String()]; ok {
			st.Classes = append(st.Classes, *row)
		}
	}
	return st
}

// QueryCount sums running queries across all shard backends.
func (rt *Runtime) QueryCount() int {
	n := 0
	for _, s := range rt.shards {
		n += s.be.QueryCount()
	}
	return n
}

// Close rejects further publishes, drains what is already queued, and
// shuts every shard engine down.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	routes := make([]*route, 0, len(rt.routes))
	for _, r := range rt.routes {
		routes = append(routes, r)
	}
	rt.mu.Unlock()
	// Stop replication shippers before the backends close underneath
	// them (a shipper racing a closing backend would just error-retry
	// until stopped, but stopping first is quieter).
	for _, r := range routes {
		if r.repl != nil {
			r.repl.close()
		}
	}
	for _, s := range rt.shards {
		s.close()
	}
}

// compile-time check that the runtime satisfies the engine surface the
// PEP needs (xacmlplus.StreamEngine is satisfied structurally; spelled
// out here to catch signature drift without importing xacmlplus).
var _ interface {
	StreamSchema(name string) (*stream.Schema, error)
	DeployScript(script string) (string, string, error)
	Withdraw(idOrHandle string) error
} = (*Runtime)(nil)
