// GPS geofencing: a second domain scenario from the paper's
// motivation (participatory sensing / personal mobile devices). A
// device owner shares their GPS track with a fleet operator, but the
// policy constrains the view to a bounding box around the city centre,
// strips the precise heading, and aggregates speed over time windows —
// the operator learns congestion, not the driver's exact movements.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/source"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func main() {
	fw := core.New("gps-cloud")
	defer fw.Close()
	if err := fw.RegisterStream("gps", source.GPSSchema()); err != nil {
		log.Fatal(err)
	}

	// Policy: operator sees track points only inside the box
	// lat ∈ [1.25, 1.45], lon ∈ [103.7, 103.95]; only samplingtime,
	// speed (heading/ids are withheld); speed is averaged over
	// 10-tuple windows advancing by 5.
	pol := xacml.NewPermitPolicy("owner:gps:fleetop",
		xacml.NewTarget("fleetop", "gps", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition,
					"latitude >= 1.25 AND latitude <= 1.45 AND longitude >= 103.7 AND longitude <= 103.95"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationMap,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "samplingtime"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "speed"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationWindow,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewIntAssignment(xacmlplus.AttrWindowSize, "10"),
				xacml.NewIntAssignment(xacmlplus.AttrWindowStep, "5"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowType, "tuple"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "samplingtime:lastval"),
				xacml.NewStringAssignment(xacmlplus.AttrWindowAttr, "speed:avg"),
			},
		},
	)
	if err := fw.AddPolicy(pol); err != nil {
		log.Fatal(err)
	}

	// The operator refines further: only slow traffic (possible
	// congestion), coarser windows.
	uq := &xacmlplus.UserQuery{
		Stream: xacmlplus.StreamRef{Name: "gps"},
		Filter: &xacmlplus.FilterClause{Condition: "speed < 25"},
		Aggregation: &xacmlplus.AggClause{
			WindowType: "tuple", WindowSize: 20, WindowStep: 5,
			Attributes: []string{"lastval(samplingtime)", "avg(speed)"},
		},
	}
	resp, err := core.RequireHandle(fw.Request("fleetop", "gps", "read", uq))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granted, handle %s\nmerged StreamSQL:\n%s\n\n", resp.Handle, resp.Script)

	// Curious third parties are refused outright.
	if r, _ := fw.Request("advertiser", "gps", "read", nil); !r.Granted() {
		fmt.Printf("advertiser's request: %s (no policy matches)\n\n", r.Decision)
	}

	// Publish a day of tracking and consume the operator's view.
	sub, err := fw.Subscribe(resp.Handle)
	if err != nil {
		log.Fatal(err)
	}
	tracker := source.NewGPSTracker("car-17", 1.35, 103.82, 0, 5000, 5)
	for i := 0; i < 5000; i++ {
		if err := fw.Publish("gps", tracker.Next()); err != nil {
			log.Fatal(err)
		}
	}
	fw.Flush()
	fmt.Println("fleet operator sees congestion windows (avg speed of slow traffic in the geofence):")
	n := 0
	for len(sub.C) > 0 {
		t := <-sub.C
		if n < 6 {
			fmt.Printf("  at %s: avg speed %.1f km/h\n", t.Values[0], t.Values[1].Double())
		}
		n++
	}
	fmt.Printf("  ... %d windows total; raw positions and headings never left the policy boundary\n", n)
}
