package server_test

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/dsms"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

func weatherSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "samplingtime", Type: stream.TypeTimestamp},
		stream.Field{Name: "rainrate", Type: stream.TypeDouble},
		stream.Field{Name: "windspeed", Type: stream.TypeDouble},
	)
}

func neaPolicy() *xacml.Policy {
	return xacml.NewPermitPolicy("nea:weather:lta",
		xacml.NewTarget("LTA", "weather", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition, "rainrate > 5"),
			},
		},
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationMap,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "samplingtime"),
				xacml.NewStringAssignment(xacmlplus.AttrMapAttribute, "rainrate"),
			},
		},
	)
}

// startStack brings up engine + data server and returns a connected
// client.
func startStack(t *testing.T) (*client.Client, *dsms.Engine) {
	t.Helper()
	eng := dsms.NewEngine("cloud")
	t.Cleanup(eng.Close)
	if err := eng.CreateStream("weather", weatherSchema()); err != nil {
		t.Fatal(err)
	}
	pep := xacmlplus.NewPEP(xacml.NewPDP(), xacmlplus.LocalEngine{E: eng})
	srv := server.New(pep, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return cli, eng
}

func TestServerPolicyLifecycle(t *testing.T) {
	cli, eng := startStack(t)
	id, err := cli.LoadPolicyObject(neaPolicy())
	if err != nil || id != "nea:weather:lta" {
		t.Fatalf("LoadPolicy: (%q,%v)", id, err)
	}
	stats, err := cli.Stats()
	if err != nil || stats.Policies != 1 {
		t.Fatalf("Stats: (%+v,%v)", stats, err)
	}
	// Access granted, handle issued.
	resp, err := client.ExpectGranted(cli.RequestAccess("LTA", "weather", "read", nil))
	if err != nil {
		t.Fatalf("RequestAccess: %v", err)
	}
	if resp.Decision != "Permit" || resp.Verdict != "OK" {
		t.Errorf("resp = %+v", resp)
	}
	if eng.QueryCount() != 1 {
		t.Errorf("engine queries = %d", eng.QueryCount())
	}
	// Removing the policy withdraws the spawned graph.
	withdrawn, err := cli.RemovePolicy(id)
	if err != nil || len(withdrawn) != 1 {
		t.Fatalf("RemovePolicy: (%v,%v)", withdrawn, err)
	}
	if eng.QueryCount() != 0 {
		t.Errorf("engine queries = %d after removal", eng.QueryCount())
	}
	// No policy, no access.
	resp, err = cli.RequestAccess("LTA", "weather", "read", nil)
	if err != nil {
		t.Fatalf("RequestAccess: %v", err)
	}
	if resp.Granted() || resp.Decision != "NotApplicable" {
		t.Errorf("resp after removal = %+v", resp)
	}
}

func TestServerAccessWithUserQuery(t *testing.T) {
	cli, _ := startStack(t)
	if _, err := cli.LoadPolicyObject(neaPolicy()); err != nil {
		t.Fatal(err)
	}
	uq := &xacmlplus.UserQuery{
		Stream: xacmlplus.StreamRef{Name: "weather"},
		Filter: &xacmlplus.FilterClause{Condition: "rainrate > 50"},
	}
	resp, err := client.ExpectGranted(cli.RequestAccess("LTA", "weather", "read", uq))
	if err != nil {
		t.Fatalf("RequestAccess: %v", err)
	}
	if !strings.Contains(resp.Script, "rainrate > 50") {
		t.Errorf("script:\n%s", resp.Script)
	}
	if resp.PDPNanos <= 0 || resp.GraphNanos <= 0 || resp.EngineNanos <= 0 {
		t.Errorf("timings = %d/%d/%d", resp.PDPNanos, resp.GraphNanos, resp.EngineNanos)
	}
	if resp.Timings().Total() <= 0 {
		t.Error("Timings() should reconstruct durations")
	}
}

func TestServerPRWarning(t *testing.T) {
	cli, eng := startStack(t)
	if _, err := cli.LoadPolicyObject(neaPolicy()); err != nil {
		t.Fatal(err)
	}
	uq := &xacmlplus.UserQuery{
		Stream: xacmlplus.StreamRef{Name: "weather"},
		Filter: &xacmlplus.FilterClause{Condition: "rainrate > 1"},
	}
	resp, err := cli.RequestAccess("LTA", "weather", "read", uq)
	if err != nil {
		t.Fatalf("RequestAccess: %v", err)
	}
	if resp.Granted() || resp.Verdict != "PR" || len(resp.Warnings) == 0 {
		t.Errorf("PR response = %+v", resp)
	}
	if eng.QueryCount() != 0 {
		t.Errorf("PR must not deploy; queries = %d", eng.QueryCount())
	}
}

func TestServerReleaseAndReuse(t *testing.T) {
	cli, eng := startStack(t)
	if _, err := cli.LoadPolicyObject(neaPolicy()); err != nil {
		t.Fatal(err)
	}
	r1, err := client.ExpectGranted(cli.RequestAccess("LTA", "weather", "read", nil))
	if err != nil {
		t.Fatal(err)
	}
	// Identical repeat reuses the grant.
	r2, err := cli.RequestAccess("LTA", "weather", "read", nil)
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !r2.Reused || r2.Handle != r1.Handle {
		t.Errorf("repeat = %+v", r2)
	}
	if eng.QueryCount() != 1 {
		t.Errorf("queries = %d", eng.QueryCount())
	}
	if err := cli.Release("LTA", "weather"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if eng.QueryCount() != 0 {
		t.Errorf("queries = %d after release", eng.QueryCount())
	}
	if err := cli.Release("LTA", "weather"); err == nil {
		t.Error("double release must fail")
	}
}

func TestServerBadInputs(t *testing.T) {
	cli, _ := startStack(t)
	if _, err := cli.LoadPolicy([]byte("<broken")); err == nil {
		t.Error("bad policy XML must fail")
	}
	if _, err := cli.RequestAccessXML("<broken", ""); err == nil {
		t.Error("bad request XML must fail")
	}
	if _, err := cli.RequestAccessXML("<Request></Request>", "<broken"); err == nil {
		t.Error("bad user query XML must fail")
	}
}
