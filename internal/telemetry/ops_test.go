package telemetry

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func opsGet(t *testing.T, addr, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exacml_ops_test_total", "Ops test counter.").Add(5)
	var notReady atomic.Bool
	srv, err := ServeOps("127.0.0.1:0", OpsOptions{
		Registry: reg,
		Ready: func() error {
			if notReady.Load() {
				return errors.New("shard 1 down")
			}
			return nil
		},
		Statsz: func() any { return map[string]int{"shards": 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	code, body, ctype := opsGet(t, addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "exacml_ops_test_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if err := LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}

	if code, body, _ := opsGet(t, addr, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	if code, body, _ := opsGet(t, addr, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	notReady.Store(true)
	if code, body, _ := opsGet(t, addr, "/readyz"); code != 503 || !strings.Contains(body, "shard 1 down") {
		t.Fatalf("/readyz after flip = %d %q, want 503 with cause", code, body)
	}

	code, body, ctype = opsGet(t, addr, "/statsz")
	if code != 200 || ctype != "application/json" || !strings.Contains(body, `"shards": 2`) {
		t.Fatalf("/statsz = %d %q %q", code, ctype, body)
	}

	if code, _, _ := opsGet(t, addr, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _, _ := opsGet(t, addr, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestOpsServerNoStatsz(t *testing.T) {
	srv, err := ServeOps("127.0.0.1:0", OpsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _, _ := opsGet(t, srv.Addr(), "/statsz"); code != 404 {
		t.Fatalf("/statsz without provider = %d, want 404", code)
	}
	// Nil registry still renders an empty, lintable exposition.
	code, body, _ := opsGet(t, srv.Addr(), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if err := LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("empty exposition does not lint: %v", err)
	}
}
