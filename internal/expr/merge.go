package expr

import (
	"math"
	"sort"
	"strings"

	"repro/internal/stream"
)

// MergeConditions combines a policy filter condition and a user filter
// condition into the single condition C3 = (C1) AND (C2) per §3.1, then
// applies the paper's simplification: when both inputs are plain
// conjunctions of simple expressions, redundant bounds are dropped (e.g.
// x > v1 AND x > v2 simplifies to x > max(v1, v2)).
//
// A nil condition stands for TRUE (no constraint).
func MergeConditions(policy, user Node) Node {
	switch {
	case policy == nil && user == nil:
		return nil
	case policy == nil:
		return Simplify(Clone(user))
	case user == nil:
		return Simplify(Clone(policy))
	}
	return Simplify(&And{L: Clone(policy), R: Clone(user)})
}

// Simplify rewrites a predicate into an equivalent, usually smaller one:
//
//   - constant folding through AND/OR/NOT (TRUE/FALSE identities);
//   - for pure conjunctions of simple expressions, per-attribute bound
//     tightening over the reals, yielding FALSE on contradictions.
//
// Predicates containing OR below the top level are folded but their
// conjunctive branches are tightened individually.
func Simplify(n Node) Node {
	n = fold(n)
	if n == nil {
		return nil
	}
	if conj, ok := flattenConjunction(n); ok {
		return tightenConjunction(conj)
	}
	// Try to simplify each top-level OR branch independently.
	if or, ok := n.(*Or); ok {
		l := Simplify(or.L)
		r := Simplify(or.R)
		return fold(&Or{L: l, R: r})
	}
	return n
}

// fold performs constant folding on literals.
func fold(n Node) Node {
	switch x := n.(type) {
	case *And:
		l, r := fold(x.L), fold(x.R)
		if isFalse(l) || isFalse(r) {
			return False
		}
		if isTrue(l) {
			return r
		}
		if isTrue(r) {
			return l
		}
		return &And{L: l, R: r}
	case *Or:
		l, r := fold(x.L), fold(x.R)
		if isTrue(l) || isTrue(r) {
			return True
		}
		if isFalse(l) {
			return r
		}
		if isFalse(r) {
			return l
		}
		return &Or{L: l, R: r}
	case *Not:
		inner := fold(x.X)
		if isTrue(inner) {
			return False
		}
		if isFalse(inner) {
			return True
		}
		return &Not{X: inner}
	default:
		return n
	}
}

func isTrue(n Node) bool {
	l, ok := n.(*Literal)
	return ok && l.Val
}

func isFalse(n Node) bool {
	l, ok := n.(*Literal)
	return ok && !l.Val
}

// flattenConjunction returns the list of simple expressions when the
// node is a pure AND-tree of simples, with ok=true.
func flattenConjunction(n Node) ([]*Simple, bool) {
	var out []*Simple
	var walk func(Node) bool
	walk = func(n Node) bool {
		switch x := n.(type) {
		case *Simple:
			out = append(out, x)
			return true
		case *And:
			return walk(x.L) && walk(x.R)
		case *Literal:
			return x.Val // TRUE vanishes; FALSE disqualifies (handled by fold)
		default:
			return false
		}
	}
	if walk(n) {
		return out, true
	}
	return nil, false
}

// bounds tracks the tightest numeric constraints per attribute while
// simplifying a conjunction.
type bounds struct {
	lo, hi         float64
	loIncl, hiIncl bool
	eq             *float64
	ne             map[float64]bool
	strEq          *string
	strNe          map[string]bool
	contradiction  bool
}

func newBounds() *bounds {
	return &bounds{lo: math.Inf(-1), hi: math.Inf(1), loIncl: true, hiIncl: true,
		ne: map[float64]bool{}, strNe: map[string]bool{}}
}

// tightenConjunction rewrites a conjunction of simples into its minimal
// equivalent form, or FALSE on contradiction.
func tightenConjunction(conj []*Simple) Node {
	byAttr := map[string]*bounds{}
	order := []string{}
	attrCase := map[string]string{} // preserve original attribute spelling
	for _, s := range conj {
		k := s.Key()
		b, ok := byAttr[k]
		if !ok {
			b = newBounds()
			byAttr[k] = b
			order = append(order, k)
			attrCase[k] = s.Attr
		}
		applySimple(b, s)
		if b.contradiction {
			return False
		}
	}
	var parts []Node
	for _, k := range order {
		parts = append(parts, emitBounds(attrCase[k], byAttr[k])...)
	}
	if len(parts) == 0 {
		return True
	}
	return NewAnd(parts...)
}

func applySimple(b *bounds, s *Simple) {
	if s.Value.Type() == stream.TypeString {
		v := s.Value.Str()
		switch s.Op {
		case OpEQ:
			if b.strEq != nil && *b.strEq != v {
				b.contradiction = true
				return
			}
			if b.strNe[v] {
				b.contradiction = true
				return
			}
			b.strEq = &v
		case OpNE:
			if b.strEq != nil && *b.strEq == v {
				b.contradiction = true
				return
			}
			b.strNe[v] = true
		default:
			// Invalid op on strings; keep as-is by treating as no-op.
		}
		return
	}
	f, ok := s.Value.AsFloat()
	if !ok {
		return
	}
	switch s.Op {
	case OpLT:
		if f < b.hi || (f == b.hi && b.hiIncl) {
			b.hi, b.hiIncl = f, false
		}
	case OpLE:
		if f < b.hi {
			b.hi, b.hiIncl = f, true
		}
	case OpGT:
		if f > b.lo || (f == b.lo && b.loIncl) {
			b.lo, b.loIncl = f, false
		}
	case OpGE:
		if f > b.lo {
			b.lo, b.loIncl = f, true
		}
	case OpEQ:
		if b.eq != nil && *b.eq != f {
			b.contradiction = true
			return
		}
		b.eq = &f
	case OpNE:
		b.ne[f] = true
	}
	// Contradiction checks.
	if b.eq != nil {
		v := *b.eq
		if v < b.lo || (v == b.lo && !b.loIncl) || v > b.hi || (v == b.hi && !b.hiIncl) || b.ne[v] {
			b.contradiction = true
			return
		}
	}
	if b.lo > b.hi {
		b.contradiction = true
		return
	}
	if b.lo == b.hi && !(b.loIncl && b.hiIncl) {
		b.contradiction = true
		return
	}
}

// emitBounds regenerates the minimal simple expressions for an attribute.
func emitBounds(attr string, b *bounds) []Node {
	var out []Node
	if b.strEq != nil {
		out = append(out, &Simple{Attr: attr, Op: OpEQ, Value: stream.StringValue(*b.strEq)})
	}
	if len(b.strNe) > 0 && b.strEq == nil {
		keys := make([]string, 0, len(b.strNe))
		for k := range b.strNe {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, &Simple{Attr: attr, Op: OpNE, Value: stream.StringValue(k)})
		}
	}
	if b.eq != nil {
		out = append(out, &Simple{Attr: attr, Op: OpEQ, Value: numValue(*b.eq)})
		return out
	}
	if b.lo == b.hi && b.loIncl && b.hiIncl && !math.IsInf(b.lo, 0) {
		out = append(out, &Simple{Attr: attr, Op: OpEQ, Value: numValue(b.lo)})
		return out
	}
	if !math.IsInf(b.lo, -1) {
		op := OpGT
		if b.loIncl {
			op = OpGE
		}
		out = append(out, &Simple{Attr: attr, Op: op, Value: numValue(b.lo)})
	}
	if !math.IsInf(b.hi, 1) {
		op := OpLT
		if b.hiIncl {
			op = OpLE
		}
		out = append(out, &Simple{Attr: attr, Op: op, Value: numValue(b.hi)})
	}
	// Emit surviving != constraints that fall inside the interval.
	if len(b.ne) > 0 {
		vals := make([]float64, 0, len(b.ne))
		for v := range b.ne {
			inRange := (v > b.lo || (v == b.lo && b.loIncl)) && (v < b.hi || (v == b.hi && b.hiIncl))
			if inRange {
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		for _, v := range vals {
			out = append(out, &Simple{Attr: attr, Op: OpNE, Value: numValue(v)})
		}
	}
	return out
}

// numValue chooses int representation for integral floats, double
// otherwise, so simplified output looks like the input literals.
func numValue(f float64) stream.Value {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return stream.IntValue(int64(f))
	}
	return stream.DoubleValue(f)
}

// Canonical renders a predicate in a normalized string form useful as a
// cache key: DNF with per-conjunction lexicographic ordering.
func Canonical(n Node) string {
	if n == nil {
		return "TRUE"
	}
	d, err := ToDNF(n)
	if err != nil {
		return n.String()
	}
	cstrs := make([]string, 0, len(d))
	for _, c := range d {
		parts := make([]string, 0, len(c))
		for _, s := range c {
			parts = append(parts, strings.ToLower(s.String()))
		}
		sort.Strings(parts)
		cstrs = append(cstrs, strings.Join(parts, " & "))
	}
	sort.Strings(cstrs)
	return strings.Join(cstrs, " | ")
}
