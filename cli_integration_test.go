package repro_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// TestCLIBinariesEndToEnd builds the five binaries and drives the
// paper's deployment through them: dsmsd → exacmld → exacml-proxy, then
// the exacml client CLI loads a policy, requests a stream with a user
// query, inspects stats, releases, and removes the policy.
func TestCLIBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build ./cmd/...: %v", err)
	}

	dsmsAddr := freeAddr(t)
	serverAddr := freeAddr(t)
	proxyAddr := freeAddr(t)

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}

	start("dsmsd", "-addr", dsmsAddr)
	waitListen(t, dsmsAddr)
	start("exacmld", "-addr", serverAddr, "-dsms", dsmsAddr)
	waitListen(t, serverAddr)
	start("exacml-proxy", "-addr", proxyAddr, "-server", serverAddr)
	waitListen(t, proxyAddr)

	// Materialise a policy file and a user query file.
	dir := t.TempDir()
	pol := xacml.NewPermitPolicy("cli:weather:lta",
		xacml.NewTarget("LTA", "weather", "read"),
		xacml.Obligation{
			ObligationID: xacmlplus.ObligationFilter,
			FulfillOn:    xacml.EffectPermit,
			Assignments: []xacml.AttributeAssignment{
				xacml.NewStringAssignment(xacmlplus.AttrFilterCondition, "rainrate > 5"),
			},
		})
	polXML, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	polPath := filepath.Join(dir, "policy.xml")
	if err := os.WriteFile(polPath, polXML, 0o644); err != nil {
		t.Fatal(err)
	}
	uqPath := filepath.Join(dir, "query.xml")
	uq := `<UserQuery><Stream name="weather"/><Filter><FilterCondition>rainrate &gt; 50</FilterCondition></Filter></UserQuery>`
	if err := os.WriteFile(uqPath, []byte(uq), 0o644); err != nil {
		t.Fatal(err)
	}

	cli := func(args ...string) string {
		cmd := exec.Command(filepath.Join(bin, "exacml"), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("exacml %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := cli("load-policy", "-addr", proxyAddr, "-file", polPath)
	if !strings.Contains(out, "cli:weather:lta") {
		t.Fatalf("load-policy output: %s", out)
	}
	out = cli("request", "-addr", proxyAddr, "-subject", "LTA", "-resource", "weather", "-query", uqPath)
	if !strings.Contains(out, "decision: Permit") || !strings.Contains(out, "handle:") {
		t.Fatalf("request output: %s", out)
	}
	if !strings.Contains(out, "verdict:  OK") {
		t.Fatalf("request verdict: %s", out)
	}
	out = cli("stats", "-addr", proxyAddr)
	if !strings.Contains(out, "policies: 1") || !strings.Contains(out, "active grants: 1") {
		t.Fatalf("stats output: %s", out)
	}
	out = cli("release", "-addr", proxyAddr, "-subject", "LTA", "-resource", "weather")
	if !strings.Contains(out, "released") {
		t.Fatalf("release output: %s", out)
	}
	out = cli("remove-policy", "-addr", proxyAddr, "-id", "cli:weather:lta")
	if !strings.Contains(out, "removed policy") {
		t.Fatalf("remove-policy output: %s", out)
	}
	out = cli("stats", "-addr", proxyAddr)
	if !strings.Contains(out, "policies: 0") {
		t.Fatalf("final stats: %s", out)
	}
}

// freeAddr reserves an ephemeral localhost port and returns it.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// waitListen polls until something accepts on addr.
func waitListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}
