package core

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/governor"
	"repro/internal/runtime"
	"repro/internal/stream"
)

func durableSchema() *stream.Schema {
	return stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeDouble},
		stream.Field{Name: "t", Type: stream.TypeTimestamp},
	)
}

const durableScript = `
CREATE INPUT STREAM s (a double, t timestamp);
CREATE WINDOW w (SIZE 4 ADVANCE 4 TUPLES);
CREATE OUTPUT STREAM out;
SELECT avg(a) AS avga FROM s[w] INTO out;
`

func publishVals(t *testing.T, f *Framework, vals ...float64) {
	t.Helper()
	for i, v := range vals {
		if err := f.Publish("s", stream.NewTuple(stream.DoubleValue(v), stream.TimestampMillis(int64(i)))); err != nil {
			t.Fatalf("publish %v: %v", v, err)
		}
	}
	f.Flush()
}

func collectEmissions(t *testing.T, c <-chan stream.Tuple, n int) []stream.Tuple {
	t.Helper()
	out := make([]stream.Tuple, 0, n)
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case tu, ok := <-c:
			if !ok {
				t.Fatalf("subscription closed after %d/%d emissions", len(out), n)
			}
			out = append(out, tu)
		case <-deadline:
			t.Fatalf("timeout waiting for emission %d/%d", len(out)+1, n)
		}
	}
	return out
}

// TestBootRecoveryRoundTrip is the acceptance round-trip: a framework
// with a state dir is fed a prefix, checkpointed, crashed (abandoned
// without Close) and re-booted; the restored query — resolved through
// its pre-crash handle — must then emit bit-identically to an un-killed
// control framework fed the same tuples, including the window that
// straddles the crash (its first half lives only in the checkpoint).
func TestBootRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fwA, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fwB := NewWithOptions("b", Options{})
	t.Cleanup(fwB.Close)
	for _, f := range []*Framework{fwA, fwB} {
		if err := f.RegisterStream("s", durableSchema()); err != nil {
			t.Fatal(err)
		}
	}
	idA, handleA, err := fwA.Engine.DeployScript(durableScript)
	if err != nil {
		t.Fatal(err)
	}
	_, handleB, err := fwB.Engine.DeployScript(durableScript)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := fwB.Subscribe(handleB)
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()

	// Prefix: one full window [1..4] plus a half-built window [5,6] that
	// only the checkpoint carries across the crash.
	publishVals(t, fwA, 1, 2, 3, 4, 5, 6)
	publishVals(t, fwB, 1, 2, 3, 4, 5, 6)
	if err := fwA.Durable.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Crash: abandon fwA without Close — no final checkpoint, no audit
	// sync, goroutines left running like a killed process's threads.

	fwA2, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatalf("re-boot: %v", err)
	}
	t.Cleanup(fwA2.Close)
	if err := fwA2.Ready(); err != nil {
		t.Fatalf("Ready after recovery: %v", err)
	}
	st := fwA2.Durable.Stats()
	if st.StreamsRestored != 1 || st.QueriesRestored != 1 || st.CheckpointsRestored != 1 {
		t.Fatalf("recovery stats = %+v, want 1 stream, 1 query, 1 checkpoint part", st)
	}
	if _, ok := fwA2.Runtime.Query(idA); !ok {
		t.Fatalf("restored query not resolvable by original id %q", idA)
	}
	subA, err := fwA2.Subscribe(handleA) // the PRE-crash handle
	if err != nil {
		t.Fatalf("subscribe by pre-crash handle %q: %v", handleA, err)
	}
	defer subA.Close()

	// Suffix: completes the straddling window [5,6,7,8] and one more.
	publishVals(t, fwA2, 7, 8, 9, 10, 11, 12)
	publishVals(t, fwB, 7, 8, 9, 10, 11, 12)

	gotA := collectEmissions(t, subA.C, 2)
	gotB := collectEmissions(t, subB.C, 3) // B also saw window [1..4]
	wantTail := gotB[1:]
	for i := range gotA {
		a, b := gotA[i], wantTail[i]
		if len(a.Values) != len(b.Values) {
			t.Fatalf("emission %d: %d fields vs %d", i, len(a.Values), len(b.Values))
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Errorf("emission %d field %d: recovered %v, control %v", i, j, a.Values[j], b.Values[j])
			}
		}
		if a.Seq != b.Seq {
			t.Errorf("emission %d: recovered Seq %d, control Seq %d (provenance lineage broken)", i, a.Seq, b.Seq)
		}
	}
	if got := gotA[0].Values[0].Double(); got != 6.5 {
		t.Errorf("straddling window avg = %v, want 6.5 (= avg of 5,6 from checkpoint + 7,8 post-restart)", got)
	}

	// Admission accounting survives the restart intact: every offered
	// tuple is either ingested, dropped or errored.
	stats := fwA2.Stats()
	for _, row := range stats.Streams {
		if row.Offered != row.Ingested+row.Dropped+row.Errors {
			t.Errorf("stream %s: offered %d != ingested %d + dropped %d + errors %d",
				row.Stream, row.Offered, row.Ingested, row.Dropped, row.Errors)
		}
	}
}

// TestBootRecoveryTornAuditTail kills the audit file mid-record: the
// torn line is discarded, the chain is rewritten to the verified
// prefix, and the recovered log keeps appending on an intact chain —
// with the recovery itself recorded as a "recover" event.
func TestBootRecoveryTornAuditTail(t *testing.T) {
	dir := t.TempDir()
	fwA, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fwA.Audit.Append(audit.Event{Kind: "access", Subject: "alice", Resource: "s", Decision: "Permit"}); err != nil {
			t.Fatal(err)
		}
	}
	fwA.Close()

	// Tear the tail: a record cut off mid-write.
	path := filepath.Join(dir, "audit.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"time":123,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fwA2, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwA2.Close)
	st := fwA2.Durable.Stats()
	// First boot chained 1 "recover" event + 3 appended = 4 good lines.
	if st.AuditReplayed != 4 || st.AuditDiscarded != 1 {
		t.Fatalf("replayed %d discarded %d, want 4 replayed, 1 discarded", st.AuditReplayed, st.AuditDiscarded)
	}
	if i := fwA2.Audit.Verify(); i != -1 {
		t.Fatalf("recovered chain corrupt at %d", i)
	}
	if got := fwA2.Audit.KindCounts()["recover"]; got != 2 {
		t.Fatalf("recover events on chain = %d, want 2 (one per boot)", got)
	}
	// The file itself was repaired: a fresh verification pass over disk
	// finds no discardable lines.
	if _, disc, err := audit.LoadFile(path); err != nil || disc != 0 {
		t.Fatalf("re-read repaired file: discarded %d, err %v", disc, err)
	}
}

// TestBootRecoveryCorruptCatalog corrupts the NEWEST catalog snapshot:
// recovery must fall back to the previous good generation rather than
// trusting (or dying on) the torn file.
func TestBootRecoveryCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	fwA, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwA.RegisterStream("s", durableSchema()); err != nil { // catalog gen 1
		t.Fatal(err)
	}
	if _, _, err := fwA.Engine.DeployScript(durableScript); err != nil { // catalog gen 2
		t.Fatal(err)
	}
	fwA.Close()

	gens, err := filepath.Glob(filepath.Join(dir, "catalog-*.json"))
	if err != nil || len(gens) < 2 {
		t.Fatalf("want >= 2 catalog generations, got %v (%v)", gens, err)
	}
	sort.Strings(gens)
	newest := gens[len(gens)-1]
	if err := os.WriteFile(newest, []byte("torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}

	fwA2, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwA2.Close)
	st := fwA2.Durable.Stats()
	if st.CatalogDiscarded != 1 {
		t.Fatalf("catalog discarded = %d, want 1", st.CatalogDiscarded)
	}
	// Generation 1 predates the deploy: the stream is back, the query is
	// not — the corrupted generation was recovered past, never trusted.
	if st.StreamsRestored != 1 || st.QueriesRestored != 0 {
		t.Fatalf("restored %d streams / %d queries, want 1 / 0 (previous generation)", st.StreamsRestored, st.QueriesRestored)
	}
	if _, err := fwA2.Runtime.StreamSchema("s"); err != nil {
		t.Fatalf("stream not restored from fallback generation: %v", err)
	}
}

// TestBootRecoveryCorruptCheckpoint corrupts the newest window
// checkpoint: recovery falls back to the previous generation, proven
// by the straddling window completing with the OLDER generation's
// half-built state.
func TestBootRecoveryCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fwA, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwA.RegisterStream("s", durableSchema()); err != nil {
		t.Fatal(err)
	}
	id, _, err := fwA.Engine.DeployScript(durableScript)
	if err != nil {
		t.Fatal(err)
	}
	publishVals(t, fwA, 1, 2, 3, 4, 5, 6) // pending window [5,6]
	if err := fwA.Durable.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	publishVals(t, fwA, 7, 8, 9, 10) // pending window [9,10]
	if err := fwA.Durable.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cks, err := filepath.Glob(filepath.Join(dir, "checkpoints", id+"-*.json"))
	if err != nil || len(cks) < 2 {
		t.Fatalf("want >= 2 checkpoint generations, got %v (%v)", cks, err)
	}
	sort.Strings(cks)
	if err := os.WriteFile(cks[len(cks)-1], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash without Close.

	fwA2, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwA2.Close)
	st := fwA2.Durable.Stats()
	if st.CheckpointsDiscarded < 1 || st.CheckpointsRestored != 1 {
		t.Fatalf("checkpoints restored %d / discarded %d, want 1 restored from the previous generation", st.CheckpointsRestored, st.CheckpointsDiscarded)
	}
	sub, err := fwA2.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	publishVals(t, fwA2, 7, 8)
	got := collectEmissions(t, sub.C, 1)
	if avg := got[0].Values[0].Double(); avg != 6.5 {
		t.Errorf("first post-recovery window avg = %v, want 6.5 (pending [5,6] from the FALLBACK checkpoint + 7,8)", avg)
	}
}

// TestGovernorDemotionSurvivesRestart drives a subject over the
// demotion threshold, crashes the node, and verifies the audit-chain
// replay re-applies the demotion on boot — while a later boot WITHOUT
// a governor shows the durable catalog kept the un-demoted base
// configuration.
func TestGovernorDemotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	gcfg := &governor.Config{
		Threshold:    2,
		HalfLife:     time.Hour, // no decay inside the test
		Cooldown:     time.Hour, // no restore inside the test
		TickInterval: -1,        // no background pass
		Bindings:     map[string][]string{"mallory": {"s"}},
	}
	fwA, err := Boot("a", Options{StateDir: dir, Governor: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwA.RegisterStream("s", durableSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fwA.Audit.Append(audit.Event{Kind: "access", Subject: "mallory", Resource: "s", Decision: "Deny"}); err != nil {
			t.Fatal(err)
		}
	}
	cfg, err := fwA.StreamAdmission("s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Class != runtime.BestEffort || cfg.Rate != 100 {
		t.Fatalf("live demotion not applied: %+v", cfg)
	}
	// Crash without Close: the demotion exists only on the audit chain.

	fwA2, err := Boot("a", Options{StateDir: dir, Governor: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	st := fwA2.Durable.Stats()
	if st.Governor.Redemoted != 1 {
		t.Fatalf("governor replay = %+v, want 1 re-applied demotion", st.Governor)
	}
	cfg, err = fwA2.StreamAdmission("s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Class != runtime.BestEffort || cfg.Rate != 100 {
		t.Fatalf("demotion did not survive the restart: %+v", cfg)
	}
	// The re-applied demotion is itself on the chain.
	found := false
	for _, e := range fwA2.Audit.Events() {
		if e.Kind == governor.KindGovern && strings.Contains(e.Detail, "re-applied after restart") {
			found = true
		}
	}
	if !found {
		t.Error("no recovered-demotion govern event on the chain")
	}
	fwA2.Close()

	// Without a governor, the same state dir boots with the BASE config:
	// the demotion was never baked into the durable catalog.
	fwA3, err := Boot("a", Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwA3.Close)
	cfg, err = fwA3.StreamAdmission("s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Class != runtime.Normal || cfg.Rate != 0 {
		t.Fatalf("catalog persisted the demotion (got %+v), want the base config back", cfg)
	}
}
