// Package client is the user-facing client interface of the eXACML+
// framework (Fig 3(a)): it loads policies, requests data streams with
// optional customised queries, and receives back stream handles or
// NR/PR warnings. It talks to either the proxy or the data server —
// both speak the same protocol.
package client

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/xacml"
	"repro/internal/xacmlplus"
)

// ErrConnClosed is wrapped by every error the client returns because
// its connection died (server shutdown, network failure, or a local
// Close). Subscribers and publishers can distinguish connection death
// from server-side errors with errors.Is(err, client.ErrConnClosed).
var ErrConnClosed = protocol.ErrClosed

// Client is a connected eXACML+ client.
type Client struct {
	rpc    *protocol.Client
	closed chan struct{}
	// OnTuple receives subscribed stream tuples (set before Subscribe).
	OnTuple func(stream.Tuple)
}

// Dial connects to a data server or proxy address.
func Dial(addr string) (*Client, error) {
	rpc, err := protocol.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{rpc: rpc, closed: make(chan struct{})}
	rpc.SetPush(func(m *protocol.Message) {
		if m.Type != server.MsgStreamTuple || c.OnTuple == nil {
			return
		}
		if t, err := protocol.Decode[stream.Tuple](m); err == nil {
			c.OnTuple(t)
		}
	})
	rpc.SetOnClose(func(error) { close(c.closed) })
	return c, nil
}

// Closed is closed when the connection dies (including via Close),
// letting subscribers stop waiting for further pushed tuples.
func (c *Client) Closed() <-chan struct{} { return c.closed }

// Close closes the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// LoadPolicy uploads a policy document (data-owner operation).
func (c *Client) LoadPolicy(policyXML []byte) (string, error) {
	resp, err := protocol.CallDecode[server.LoadPolicyResp](c.rpc, server.MsgLoadPolicy,
		server.LoadPolicyReq{PolicyXML: string(policyXML)})
	if err != nil {
		return "", err
	}
	return resp.PolicyID, nil
}

// LoadPolicyObject marshals and uploads a policy.
func (c *Client) LoadPolicyObject(p *xacml.Policy) (string, error) {
	data, err := p.Marshal()
	if err != nil {
		return "", err
	}
	return c.LoadPolicy(data)
}

// RemovePolicy removes a policy; the server withdraws all query graphs
// it spawned and returns their ids.
func (c *Client) RemovePolicy(policyID string) ([]string, error) {
	resp, err := protocol.CallDecode[server.RemovePolicyResp](c.rpc, server.MsgRemovePolicy,
		server.RemovePolicyReq{PolicyID: policyID})
	if err != nil {
		return nil, err
	}
	return resp.Withdrawn, nil
}

// RequestAccess asks for a data stream as subject/resource/action with
// an optional customised query, returning the wire response (handle,
// warnings, timings).
func (c *Client) RequestAccess(subject, resource, action string, uq *xacmlplus.UserQuery) (server.AccessResp, error) {
	req := xacml.NewRequest(subject, resource, action)
	reqXML, err := req.Marshal()
	if err != nil {
		return server.AccessResp{}, err
	}
	wire := server.AccessReq{RequestXML: string(reqXML)}
	if uq != nil {
		uqXML, err := uq.Marshal()
		if err != nil {
			return server.AccessResp{}, err
		}
		wire.UserQueryXML = string(uqXML)
	}
	return protocol.CallDecode[server.AccessResp](c.rpc, server.MsgAccess, wire)
}

// RequestAccessXML sends pre-marshalled request and user-query
// documents (the workload driver uses this to replay generated files).
func (c *Client) RequestAccessXML(requestXML, userQueryXML string) (server.AccessResp, error) {
	return protocol.CallDecode[server.AccessResp](c.rpc, server.MsgAccess,
		server.AccessReq{RequestXML: requestXML, UserQueryXML: userQueryXML})
}

// Release gives up the caller's grant on a stream.
func (c *Client) Release(user, streamName string) error {
	_, err := c.rpc.Call(server.MsgRelease, server.ReleaseReq{User: user, Stream: streamName})
	return err
}

// Stats fetches server counters.
func (c *Client) Stats() (server.StatsResp, error) {
	return protocol.CallDecode[server.StatsResp](c.rpc, server.MsgStats, struct{}{})
}

// Publish appends one tuple to a stream through the server's ingest
// runtime (data-owner operation).
func (c *Client) Publish(streamName string, t stream.Tuple) error {
	_, err := c.PublishBatch(streamName, []stream.Tuple{t})
	return err
}

// PublishBatch appends a batch of tuples in one round trip, returning
// how many the server's backpressure policy accepted.
func (c *Client) PublishBatch(streamName string, ts []stream.Tuple) (int, error) {
	resp, err := c.PublishBatchVerdict(streamName, ts)
	if err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// PublishBatchVerdict appends a batch of tuples in one round trip and
// returns the server's full admission verdict, including how many
// tuples the stream's quota shed before they reached a shard queue.
func (c *Client) PublishBatchVerdict(streamName string, ts []stream.Tuple) (server.PublishResp, error) {
	return protocol.CallDecode[server.PublishResp](c.rpc, server.MsgPublish,
		server.PublishReq{Stream: streamName, Tuples: ts})
}

// Subscribe attaches this client to a granted stream handle on a
// server with an embedded runtime; tuples arrive via OnTuple. One
// subscription per client connection.
func (c *Client) Subscribe(handle string) error {
	_, err := c.rpc.Call(server.MsgSubscribe, server.SubscribeReq{Handle: handle})
	return err
}

// RuntimeStats fetches the server's ingest-runtime snapshot (per-shard
// queue depth, throughput, drops).
func (c *Client) RuntimeStats() (metrics.RuntimeStats, error) {
	resp, err := protocol.CallDecode[server.RuntimeStatsResp](c.rpc, server.MsgRuntimeStats, struct{}{})
	if err != nil {
		return metrics.RuntimeStats{}, err
	}
	return resp.Stats, nil
}

// Reconfigure atomically swaps a registered stream's priority class
// and token-bucket quota on the server without re-registering the
// stream (operator operation). class is "besteffort", "normal" or
// "critical" ("" = normal); rate 0 removes the quota; burst 0 defaults
// to one second of rate. The response reports the configuration
// replaced and the one now in force.
func (c *Client) Reconfigure(streamName, class string, rate float64, burst int) (server.ReconfigureResp, error) {
	return protocol.CallDecode[server.ReconfigureResp](c.rpc, server.MsgReconfigure,
		server.ReconfigureReq{Stream: streamName, Class: class, Rate: rate, Burst: burst})
}

// GovernorStats fetches the accountability governor's snapshot:
// tracked subjects with decayed scores, active demotions, and lifetime
// demotion/restore counters. Fails when the server runs no governor.
func (c *Client) GovernorStats() (governor.Stats, error) {
	resp, err := protocol.CallDecode[server.GovernorStatsResp](c.rpc, server.MsgGovernorStats, struct{}{})
	if err != nil {
		return governor.Stats{}, err
	}
	return resp.Stats, nil
}

// ExpectGranted is a convenience that fails unless a handle was issued.
func ExpectGranted(resp server.AccessResp, err error) (server.AccessResp, error) {
	if err != nil {
		return resp, err
	}
	if !resp.Granted() {
		return resp, fmt.Errorf("client: access not granted (decision=%s verdict=%s warnings=%v)",
			resp.Decision, resp.Verdict, resp.Warnings)
	}
	return resp, nil
}
