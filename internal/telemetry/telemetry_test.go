package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRenderAndLint(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("exacml_test_total", "A test counter.", L("shard", "0"))
	c.Add(7)
	reg.Counter("exacml_test_total", "A test counter.", L("shard", "1")).Inc()
	g := reg.Gauge("exacml_depth", "A test gauge.")
	g.Set(-3)
	h := reg.Histogram("exacml_lat_seconds", "A test histogram.", nil, L("stage", "seal"))
	h.Observe(3 * time.Microsecond)
	h.Observe(20 * time.Millisecond)
	h.Observe(30 * time.Second) // lands in +Inf
	reg.RegisterCollector(func(ga *Gather) {
		ga.Counter("exacml_collected_total", "From a collector.", 42, L("k", "v"))
		ga.Gauge("exacml_collected_depth", "From a collector.", 1.5)
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`exacml_test_total{shard="0"} 7`,
		`exacml_test_total{shard="1"} 1`,
		`exacml_depth -3`,
		`exacml_lat_seconds_bucket{stage="seal",le="+Inf"} 3`,
		`exacml_lat_seconds_count{stage="seal"} 3`,
		`exacml_collected_total{k="v"} 42`,
		`exacml_collected_depth 1.5`,
		"# TYPE exacml_lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, out)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("exacml_same_total", "h", L("x", "1"))
	b := reg.Counter("exacml_same_total", "h", L("x", "1"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	other := reg.Counter("exacml_same_total", "h", L("x", "2"))
	if a == other {
		t.Fatal("different labels must be distinct series")
	}
}

func TestNilRegistryAndMetricsAreSafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "h")
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter should read 0")
	}
	reg.Gauge("g", "h").Set(4)
	reg.Histogram("h_seconds", "h", nil).Observe(time.Second)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	sp := tr.Sample()
	sp.Begin(0)
	sp.End(0)
	sp.Finish()
}

func TestLintExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_type_metric 1\n",               // sample without TYPE
		"# TYPE m counter\nm{x=\"1\" 3\n",  // broken labels
		"# TYPE m counter\nm notanumber\n", // bad value
		"# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\n", // non-cumulative
		"# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_count 5\n",                                     // no +Inf
	}
	for i, s := range bad {
		if err := LintExposition(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: lint accepted bad exposition:\n%s", i, s)
		}
	}
}

func TestTracerSamplingAndHistograms(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "exacml_req", []string{"a", "b"}, 1)
	sp := tr.Sample()
	if sp == nil {
		t.Fatal("sampleEvery=1 must always sample")
	}
	sp.Begin(0)
	time.Sleep(time.Millisecond)
	sp.End(0)
	sp.Begin(1)
	sp.End(1)
	if sp.Duration(0) < time.Millisecond {
		t.Fatalf("stage 0 duration %v too small", sp.Duration(0))
	}
	sp.Finish()
	sp.Finish() // double finish is a no-op

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `exacml_req_stage_seconds_count{stage="a"} 1`) {
		t.Errorf("stage histogram not fed:\n%s", out)
	}
	if !strings.Contains(out, "exacml_req_e2e_seconds_count 1") {
		t.Errorf("e2e histogram not fed:\n%s", out)
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("tracer exposition does not lint: %v", err)
	}
}

func TestTracerSampleEveryPowerOfTwo(t *testing.T) {
	tr := NewTracer(nil, "x", []string{"s"}, 1000)
	if got := tr.SampleEvery(); got != 1024 {
		t.Fatalf("sampleEvery rounded to %d, want 1024", got)
	}
	n := 0
	for i := 0; i < 4096; i++ {
		if sp := tr.Sample(); sp != nil {
			n++
			sp.Finish()
		}
	}
	if n != 4 {
		t.Fatalf("sampled %d of 4096, want 4", n)
	}
}

func TestTracerSampleCrossing(t *testing.T) {
	tr := NewTracer(nil, "x", []string{"s"}, 4)
	var n, hits uint64
	for i := 0; i < 100; i++ {
		before := n
		n += 3
		if sp := tr.SampleCrossing(before, n); sp != nil {
			hits++
			sp.Finish()
		}
	}
	// 100 batches of 3 tuples cross a multiple of 4 every ~4/3 batches.
	if hits < 60 || hits > 80 {
		t.Fatalf("crossing sampled %d times, want ~75", hits)
	}
}

func TestNilRegistryTracerStillMeasures(t *testing.T) {
	tr := NewTracer(nil, "exacml_req", []string{"pdp"}, 1)
	sp := tr.Sample()
	sp.Begin(0)
	time.Sleep(time.Millisecond)
	sp.End(0)
	if sp.Duration(0) == 0 {
		t.Fatal("nil-registry span must still record durations")
	}
	sp.Finish()
}
