package experiments

import "testing"

// TestFailoverBlastRadiusSmoke runs the kill/promote/restart cycle at
// a small scale: the invariant must hold, the query must fail over,
// and the restarted process must be re-adopted and re-fed to zero lag.
func TestFailoverBlastRadiusSmoke(t *testing.T) {
	res, err := RunFailoverBlastRadius(FailoverOptions{Tuples: 4000, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Stats.Total()
	if total.Offered == 0 || total.Ingested == 0 {
		t.Fatalf("no flow: %+v", total)
	}
	if res.FailoverLatency == 0 {
		t.Error("query never failed over to the follower")
	}
	if !res.Readopted {
		t.Error("restarted dsmsd was never re-adopted")
	}
	if res.Readopted && res.ResidualLag != 0 {
		t.Errorf("re-adopted follower still lags by %d after Flush", res.ResidualLag)
	}
	t.Logf("failover result: %s", res)
}
