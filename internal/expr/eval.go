package expr

import (
	"fmt"

	"repro/internal/stream"
)

// Eval evaluates the predicate against a tuple under the given schema.
// Simple expressions referencing attributes absent from the schema are an
// error; comparisons between incompatible types are an error.
func Eval(n Node, s *stream.Schema, t stream.Tuple) (bool, error) {
	switch x := n.(type) {
	case *Literal:
		return x.Val, nil
	case *Not:
		v, err := Eval(x.X, s, t)
		return !v, err
	case *And:
		l, err := Eval(x.L, s, t)
		if err != nil {
			return false, err
		}
		if !l {
			return false, nil
		}
		return Eval(x.R, s, t)
	case *Or:
		l, err := Eval(x.L, s, t)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return Eval(x.R, s, t)
	case *Simple:
		return evalSimple(x, s, t)
	default:
		return false, fmt.Errorf("expr: cannot evaluate %T", n)
	}
}

// opHolds reports whether a three-way comparison outcome satisfies op;
// ok is false for an invalid operator. Shared by the interpreted
// evaluator (Eval) and the compiled one (Bind) so their comparison
// semantics cannot drift.
func opHolds(op Op, cmp int) (holds, ok bool) {
	switch op {
	case OpLT:
		return cmp < 0, true
	case OpGT:
		return cmp > 0, true
	case OpLE:
		return cmp <= 0, true
	case OpGE:
		return cmp >= 0, true
	case OpEQ:
		return cmp == 0, true
	case OpNE:
		return cmp != 0, true
	default:
		return false, false
	}
}

func evalSimple(x *Simple, s *stream.Schema, t stream.Tuple) (bool, error) {
	v, err := t.Get(s, x.Attr)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		// Nulls never satisfy a comparison (SQL-ish semantics).
		return false, nil
	}
	cmp, err := v.Compare(x.Value)
	if err != nil {
		return false, fmt.Errorf("expr: %s: %w", x, err)
	}
	holds, ok := opHolds(x.Op, cmp)
	if !ok {
		return false, fmt.Errorf("expr: invalid operator in %s", x)
	}
	return holds, nil
}

// Validate checks that every attribute referenced by the predicate exists
// in the schema and that literal types are comparable with the attribute
// type. It returns the first problem found.
func Validate(n Node, s *stream.Schema) error {
	switch x := n.(type) {
	case *Literal, nil:
		return nil
	case *Not:
		return Validate(x.X, s)
	case *And:
		if err := Validate(x.L, s); err != nil {
			return err
		}
		return Validate(x.R, s)
	case *Or:
		if err := Validate(x.L, s); err != nil {
			return err
		}
		return Validate(x.R, s)
	case *Simple:
		_, ft, ok := s.Lookup(x.Attr)
		if !ok {
			return fmt.Errorf("expr: unknown attribute %q", x.Attr)
		}
		lt := x.Value.Type()
		if ft == stream.TypeString || lt == stream.TypeString {
			if ft != stream.TypeString || lt != stream.TypeString {
				return fmt.Errorf("expr: %s: type mismatch (%s attribute vs %s literal)", x, ft, lt)
			}
			if x.Op != OpEQ && x.Op != OpNE {
				return fmt.Errorf("expr: %s: strings support only = and !=", x)
			}
			return nil
		}
		if !ft.IsNumeric() && ft != stream.TypeBool {
			return fmt.Errorf("expr: %s: attribute type %s not comparable", x, ft)
		}
		return nil
	default:
		return fmt.Errorf("expr: unknown node %T", n)
	}
}
