package metrics

import (
	"strings"
	"testing"
	"time"
)

func seriesOf(name string, ms ...int) *Series {
	s := &Series{Name: name}
	for i, m := range ms {
		s.Add(Sample{Seq: i, Total: time.Duration(m) * time.Millisecond})
	}
	return s
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]time.Duration{10, 20, 30, 40})
	cases := []struct {
		v    time.Duration
		want float64
	}{
		{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.v); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.v, got, cse.want)
		}
	}
	empty := NewCDF(nil)
	if empty.At(10) != 0 {
		t.Error("empty CDF At")
	}
}

func TestQuantiles(t *testing.T) {
	vals := make([]time.Duration, 100)
	for i := range vals {
		vals[i] = time.Duration(i+1) * time.Millisecond
	}
	c := NewCDF(vals)
	if c.Median() != 50*time.Millisecond {
		t.Errorf("median = %v", c.Median())
	}
	if c.Quantile(0.9) != 90*time.Millisecond {
		t.Errorf("p90 = %v", c.Quantile(0.9))
	}
	if c.Quantile(0) != time.Millisecond || c.Quantile(1) != 100*time.Millisecond {
		t.Error("extremes")
	}
	if NewCDF(nil).Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestSummarize(t *testing.T) {
	vals := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	s := Summarize(vals)
	if s.N != 3 || s.Mean != 20*time.Millisecond {
		t.Errorf("stats = %+v", s)
	}
	if s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// std of (10,20,30) = sqrt(200/3) ms ≈ 8.16ms
	if s.Std < 8*time.Millisecond || s.Std > 9*time.Millisecond {
		t.Errorf("std = %v", s.Std)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Error("String render")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summarize")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	// Monotone nondecreasing fractions from >0 to 1.
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatalf("CDF not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last fraction = %v", pts[len(pts)-1][1])
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty points")
	}
}

func TestRenderCDFTable(t *testing.T) {
	a := seriesOf("fast", 1, 2, 3)
	b := seriesOf("slow", 10, 20, 30)
	out := RenderCDFTable(8, a, b)
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 {
		t.Errorf("lines = %d", len(lines))
	}
}

func TestImprovementHistogram(t *testing.T) {
	slow := seriesOf("slow", 100, 100, 100, 100)
	fast := seriesOf("fast", 40, 80, 95, 100) // imps: 1.5x, 0.25x, 0.052x, 0
	over100, over10, under10 := ImprovementHistogram(slow, fast)
	if over100 != 0.25 || over10 != 0.25 || under10 != 0.5 {
		t.Errorf("histogram = %v/%v/%v", over100, over10, under10)
	}
	z1, z2, z3 := ImprovementHistogram(&Series{}, &Series{})
	if z1 != 0 || z2 != 0 || z3 != 0 {
		t.Error("empty histogram")
	}
}

func TestSeriesTotals(t *testing.T) {
	s := seriesOf("x", 5, 6)
	ts := s.Totals()
	if len(ts) != 2 || ts[0] != 5*time.Millisecond {
		t.Errorf("totals = %v", ts)
	}
}
