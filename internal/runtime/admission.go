package runtime

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/ratelimit"
)

// Class is a stream's priority class. Under pressure the runtime sheds
// lower classes first: DropNewest/DropOldest evict lowest-class tuples
// before touching higher ones, and with Options.BlockClass set, Block
// applies backpressure only to classes at or above the threshold while
// shedding the rest.
type Class int8

const (
	// BestEffort streams are shed first under overload.
	BestEffort Class = iota
	// Normal is the default class for registered streams.
	Normal
	// Critical streams are shed last; under class-aware policies their
	// tuples evict queued lower-class tuples instead of being dropped.
	Critical

	numClasses = 3
)

// String names the class.
func (c Class) String() string {
	switch c {
	case BestEffort:
		return "besteffort"
	case Normal:
		return "normal"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass reads a class name (as printed by String). The empty
// string parses as Normal.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "besteffort", "best-effort", "be":
		return BestEffort, nil
	case "normal", "":
		return Normal, nil
	case "critical", "crit":
		return Critical, nil
	}
	return Normal, fmt.Errorf("runtime: unknown priority class %q", s)
}

// maxQuotaRate bounds a quota's sustained rate (tuples/second): high
// enough for any real deployment, low enough that burst derivation and
// token arithmetic can never overflow an int.
const maxQuotaRate = 1e12

// StreamConfig is the admission configuration attached to a stream at
// registration: a priority class and an optional token-bucket quota.
// Rate is the sustained admission rate in tuples/second (at most
// maxQuotaRate) and Burst the bucket depth; Rate == 0 means unlimited
// (no bucket).
type StreamConfig struct {
	Class Class
	Rate  float64
	Burst int
}

// StreamOption customises a stream at registration time.
type StreamOption func(*StreamConfig)

// WithClass sets the stream's priority class.
func WithClass(c Class) StreamOption {
	return func(cfg *StreamConfig) { cfg.Class = c }
}

// WithQuota attaches a token-bucket quota: at most rate tuples/second
// sustained, with bursts up to burst tuples. burst <= 0 defaults to one
// second's worth of tokens.
func WithQuota(rate float64, burst int) StreamOption {
	return func(cfg *StreamConfig) {
		cfg.Rate = rate
		cfg.Burst = burst
	}
}

// WithConfig applies a whole StreamConfig at once (the form the
// -admission flag parser produces).
func WithConfig(cfg StreamConfig) StreamOption {
	return func(dst *StreamConfig) { *dst = cfg }
}

func buildConfig(opts []StreamOption) (StreamConfig, error) {
	cfg := StreamConfig{Class: Normal}
	for _, o := range opts {
		o(&cfg)
	}
	return normalizeConfig(cfg)
}

// normalizeConfig validates a StreamConfig and fills derived defaults;
// it is the shared gate of registration (buildConfig) and live
// reconfiguration (Runtime.Reconfigure).
func normalizeConfig(cfg StreamConfig) (StreamConfig, error) {
	if cfg.Class < BestEffort || cfg.Class > Critical {
		return cfg, fmt.Errorf("runtime: invalid priority class %d (want %s..%s)", int(cfg.Class), BestEffort, Critical)
	}
	// NaN fails every comparison, so express the validity range
	// positively: 0 <= rate <= maxQuotaRate rejects NaN and ±Inf too.
	if !(cfg.Rate >= 0 && cfg.Rate <= maxQuotaRate) {
		return cfg, fmt.Errorf("runtime: quota rate %v outside 0..%g tuples/s", cfg.Rate, float64(maxQuotaRate))
	}
	// Normalize the burst default here so the token bucket and the
	// stats rows always agree on the effective value.
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.Rate))
	}
	if cfg.Rate == 0 {
		cfg.Burst = 0 // unlimited streams carry no bucket depth
	}
	return cfg, nil
}

// admissionState is a stream's live admission configuration: the
// normalized StreamConfig plus the token bucket enforcing its quota.
// The pair lives behind one atomic pointer on the route, so
// Runtime.Reconfigure swaps class and quota in a single step: a
// publisher observes either the old state or the new one, never a
// mixture.
type admissionState struct {
	cfg    StreamConfig
	bucket *ratelimit.Bucket
}

func newAdmissionState(cfg StreamConfig) *admissionState {
	return &admissionState{cfg: cfg, bucket: ratelimit.New(cfg.Rate, cfg.Burst)}
}

// ParseStreamSpecs reads a comma-separated list of per-stream admission
// specs of the form
//
//	name=class[:rate[:burst]]
//
// e.g. "weather=besteffort:5000:256,gps=critical". Rate is in
// tuples/second (0 = unlimited); burst defaults to one second of rate.
func ParseStreamSpecs(s string) (map[string]StreamConfig, error) {
	out := map[string]StreamConfig{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("runtime: admission spec %q is not name=class[:rate[:burst]]", part)
		}
		fields := strings.Split(spec, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("runtime: admission spec %q has too many fields", part)
		}
		cls, err := ParseClass(fields[0])
		if err != nil {
			return nil, err
		}
		cfg := StreamConfig{Class: cls}
		if len(fields) > 1 {
			cfg.Rate, err = strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
			// The positive form of the range check rejects NaN and ±Inf,
			// which ParseFloat accepts.
			if err != nil || !(cfg.Rate >= 0 && cfg.Rate <= maxQuotaRate) {
				return nil, fmt.Errorf("runtime: admission spec %q: bad rate %q", part, fields[1])
			}
		}
		if len(fields) > 2 {
			cfg.Burst, err = strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil || cfg.Burst < 0 {
				return nil, fmt.Errorf("runtime: admission spec %q: bad burst %q", part, fields[2])
			}
		}
		out[strings.ToLower(name)] = cfg
	}
	return out, nil
}

// PublishVerdict is the admission outcome of one PublishBatch call:
// Offered tuples were presented, Shed were refused by the stream's
// quota before reaching any shard, and Accepted entered shard queues
// (tuples neither shed nor accepted were dropped by the backpressure
// policy).
type PublishVerdict struct {
	Offered  int
	Accepted int
	Shed     int
}

// streamCounters is the per-stream admission accounting, shared between
// the publish path and the shard workers (hence atomics). The
// steady-state invariant after a flush is
//
//	offered == shed + dropped + ingested + errors
type streamCounters struct {
	offered  atomic.Uint64 // schema-valid tuples presented to PublishBatch
	shed     atomic.Uint64 // refused by the stream's quota
	dropped  atomic.Uint64 // shed by the backpressure policy (incoming or evicted)
	ingested atomic.Uint64 // delivered into a shard engine
	errors   atomic.Uint64 // rejected by a shard engine
}
